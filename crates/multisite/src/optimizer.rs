//! The two-step optimizer (Section 6 of the paper).
//!
//! * **Step 1** designs the channel-minimal test architecture for the SOC on
//!   the target ATE (delegated to [`soctest_tam::step1`]). The resulting
//!   per-SOC channel count `k` determines the maximum multi-site `n_max`.
//! * **Step 2** walks the site count `n` from `n_max` down to 1. At each
//!   `n` the ATE channels freed by the abandoned sites are redistributed
//!   over the remaining sites (always to the fullest channel group), the
//!   test time and throughput are re-evaluated, and the `n` with the highest
//!   throughput is selected as `n_opt`.

use crate::error::OptimizeError;
use crate::problem::OptimizerConfig;
use crate::solution::{MultiSiteSolution, SitePoint};
use soctest_soc_model::Soc;
use soctest_tam::redistribute::redistribute_extra_width;
use soctest_tam::step1::design_with_table;
use soctest_tam::{TestArchitecture, TimeTable};
use soctest_throughput::retest::{retest_rate, unique_devices_per_hour};
use soctest_throughput::{TestTimes, ThroughputModel, YieldParams};

/// Runs the complete two-step optimization for `soc` under `config`.
///
/// # Errors
///
/// * [`OptimizeError::InvalidConfig`] when a yield parameter is out of
///   range,
/// * [`OptimizeError::Architecture`] when the SOC cannot be tested on the
///   target ATE at all (some module does not meet the vector-memory depth,
///   or the channel count is insufficient).
pub fn optimize(soc: &Soc, config: &OptimizerConfig) -> Result<MultiSiteSolution, OptimizeError> {
    let max_width = (config.test_cell.ate.channels / 2).max(1);
    let table = TimeTable::build(soc, max_width);
    optimize_with_table(soc.name(), &table, config)
}

/// Runs the two-step optimization on a prebuilt [`TimeTable`].
///
/// Sharing the table across runs (e.g. in the Figure 6 sweeps, where only
/// the ATE changes) avoids recomputing every module's wrapper designs.
///
/// # Errors
///
/// See [`optimize`].
pub fn optimize_with_table(
    soc_name: &str,
    table: &TimeTable,
    config: &OptimizerConfig,
) -> Result<MultiSiteSolution, OptimizeError> {
    config.validate()?;
    let ate = &config.test_cell.ate;
    let channels = ate.channels;
    let depth = ate.vector_memory_depth;

    // Step 1: channel-minimal architecture and maximum multi-site.
    let step1 = design_with_table(table, channels, depth)?;
    let max_sites = max_sites_for(&step1, channels, config.options.stimulus_broadcast).max(1);

    // Step 2: evaluate every site count, redistributing freed channels.
    let mut curve = Vec::with_capacity(max_sites);
    let mut best: Option<(SitePoint, TestArchitecture)> = None;
    for sites in 1..=max_sites {
        let available = channels_per_site(channels, sites, config.options.stimulus_broadcast);
        let extra_width = (available / 2).saturating_sub(step1.total_width());
        let architecture = if extra_width > 0 {
            redistribute_extra_width(&step1, table, extra_width).architecture
        } else {
            step1.clone()
        };
        let point = evaluate_point(&architecture, sites, config);
        let replace = match &best {
            None => true,
            Some((current, _)) => point.objective() > current.objective() + f64::EPSILON,
        };
        if replace {
            best = Some((point.clone(), architecture));
        }
        curve.push(point);
    }
    let (optimal, optimal_architecture) = best.expect("at least one site evaluated");

    let contacted_pads_per_site = contacted_pads(optimal.channels_per_site, config);
    Ok(MultiSiteSolution {
        soc_name: soc_name.to_string(),
        step1_architecture: step1,
        max_sites,
        curve,
        optimal,
        optimal_architecture,
        contacted_pads_per_site,
    })
}

/// The "Step 1 only" throughput curve (the dashed line of Figure 5): the
/// architecture is kept at its channel-minimal form for every site count,
/// i.e. no channel redistribution takes place and the test time stays
/// constant.
pub fn step1_only_curve(
    step1: &TestArchitecture,
    config: &OptimizerConfig,
    max_sites: usize,
) -> Vec<SitePoint> {
    (1..=max_sites.max(1))
        .map(|sites| evaluate_point(step1, sites, config))
        .collect()
}

/// Evaluates the throughput of testing `sites` copies of the SOC in
/// parallel, each wired to `architecture`.
pub fn evaluate_point(
    architecture: &TestArchitecture,
    sites: usize,
    config: &OptimizerConfig,
) -> SitePoint {
    let ate = &config.test_cell.ate;
    let probe = &config.test_cell.probe;
    let cycles = architecture.test_time_cycles();
    let manufacturing_test_time_s = ate.cycles_to_seconds(cycles);
    let channels_used = architecture.total_channels();
    let pins = contacted_pads(channels_used, config);

    let model = ThroughputModel::new(
        TestTimes {
            index_time_s: probe.index_time_s,
            contact_test_time_s: probe.contact_test_time_s,
            manufacturing_test_time_s,
        },
        YieldParams {
            contact_yield: config.contact_yield,
            manufacturing_yield: config.manufacturing_yield,
            contacted_pins: pins,
        },
    );

    let (expected_test_time_s, devices_per_hour) = if config.options.abort_on_fail {
        (
            model.abort_on_fail_test_time(sites),
            model.devices_per_hour_abort_on_fail(sites),
        )
    } else {
        (model.times.test_time_s(), model.devices_per_hour(sites))
    };
    let unique = if config.options.retest_contact_failures {
        unique_devices_per_hour(devices_per_hour, retest_rate(pins, config.contact_yield))
    } else {
        devices_per_hour
    };

    SitePoint {
        sites,
        channels_per_site: channels_used,
        tam_width: architecture.total_width(),
        test_time_cycles: cycles,
        manufacturing_test_time_s,
        expected_test_time_s,
        devices_per_hour,
        unique_devices_per_hour: unique,
    }
}

/// Maximum multi-site supported by `architecture` on an ATE with
/// `channels` channels, with or without stimulus broadcast (Section 6,
/// Step 1).
pub fn max_sites_for(architecture: &TestArchitecture, channels: usize, broadcast: bool) -> usize {
    if broadcast {
        architecture.max_sites_with_broadcast(channels)
    } else {
        architecture.max_sites_without_broadcast(channels)
    }
}

/// Even number of ATE channels available to each of `sites` sites.
///
/// Without broadcast every site gets its own stimulus and response
/// channels: `2·⌊⌊K/n⌋ / 2⌋`. With stimulus broadcast the stimulus half is
/// shared by all sites: `k/2·(n+1) ≤ K`, i.e. `2·⌊K/(n+1)⌋`.
pub fn channels_per_site(channels: usize, sites: usize, broadcast: bool) -> usize {
    assert!(sites > 0, "at least one site is required");
    if broadcast {
        2 * (channels / (sites + 1))
    } else {
        2 * (channels / sites / 2)
    }
}

fn contacted_pads(channels_per_site: usize, config: &OptimizerConfig) -> usize {
    channels_per_site
        + config.erpct.control_pins
        + config.erpct.clock_pins
        + config.erpct.power_pins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MultiSiteOptions;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use soctest_soc_model::benchmarks::{d695, p22810};

    fn small_cell() -> TestCell {
        TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        )
    }

    #[test]
    fn optimize_d695_produces_consistent_solution() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell());
        let solution = optimize(&soc, &config).unwrap();
        assert_eq!(solution.curve.len(), solution.max_sites);
        assert!(solution.optimal.sites >= 1 && solution.optimal.sites <= solution.max_sites);
        // The optimum is the maximum of the curve.
        let best_on_curve = solution
            .curve
            .iter()
            .map(|p| p.objective())
            .fold(f64::MIN, f64::max);
        assert!((solution.optimal.objective() - best_on_curve).abs() < 1e-9);
        // Channel budget per site respected.
        for point in &solution.curve {
            let budget = channels_per_site(256, point.sites, false);
            assert!(point.channels_per_site <= budget);
        }
    }

    #[test]
    fn throughput_optimum_beats_or_matches_naive_max_sites() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell());
        let solution = optimize(&soc, &config).unwrap();
        let at_max = solution.point(solution.max_sites).unwrap();
        assert!(solution.optimal.objective() >= at_max.objective() - 1e-9);
        assert!(solution.step2_gain() >= 0.0);
    }

    #[test]
    fn broadcast_allows_more_sites_than_no_broadcast() {
        let soc = d695();
        let base = OptimizerConfig::new(small_cell());
        let broadcast = OptimizerConfig::new(small_cell())
            .with_options(MultiSiteOptions::baseline().with_broadcast());
        let without = optimize(&soc, &base).unwrap();
        let with = optimize(&soc, &broadcast).unwrap();
        assert!(with.max_sites > without.max_sites);
        assert!(with.optimal.devices_per_hour >= without.optimal.devices_per_hour);
    }

    #[test]
    fn step2_redistribution_reduces_test_time_at_low_site_counts() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell());
        let solution = optimize(&soc, &config).unwrap();
        let step1_time = solution.step1_architecture.test_time_cycles();
        // At a single site all channels are available, so the test time must
        // not be worse than Step 1's.
        let single = solution.point(1).unwrap();
        assert!(single.test_time_cycles <= step1_time);
        // At the maximum site count no extra channels exist, so the test
        // time equals Step 1's.
        let at_max = solution.point(solution.max_sites).unwrap();
        assert_eq!(at_max.test_time_cycles, step1_time);
    }

    #[test]
    fn abort_on_fail_improves_throughput_at_low_yield() {
        let soc = d695();
        let base = OptimizerConfig::new(small_cell()).with_manufacturing_yield(0.7);
        let abort = base.with_options(MultiSiteOptions::baseline().with_abort_on_fail());
        let without = optimize(&soc, &base).unwrap();
        let with = optimize(&soc, &abort).unwrap();
        let n = 1;
        assert!(
            with.point(n).unwrap().devices_per_hour
                >= without.point(n).unwrap().devices_per_hour - 1e-9
        );
    }

    #[test]
    fn retest_reduces_unique_throughput_at_low_contact_yield() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell())
            .with_contact_yield(0.995)
            .with_options(MultiSiteOptions::baseline().with_retest());
        let solution = optimize(&soc, &config).unwrap();
        for point in &solution.curve {
            assert!(point.unique_devices_per_hour < point.devices_per_hour);
        }
    }

    #[test]
    fn step1_only_curve_has_constant_test_time() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell());
        let solution = optimize(&soc, &config).unwrap();
        let curve = step1_only_curve(&solution.step1_architecture, &config, solution.max_sites);
        assert_eq!(curve.len(), solution.max_sites);
        let t0 = curve[0].test_time_cycles;
        assert!(curve.iter().all(|p| p.test_time_cycles == t0));
        // Step 1+2 is at least as good as Step 1 only, at every site count.
        for (full, only) in solution.curve.iter().zip(&curve) {
            assert!(full.devices_per_hour >= only.devices_per_hour - 1e-9);
        }
    }

    #[test]
    fn channels_per_site_formulas() {
        assert_eq!(channels_per_site(512, 5, false), 102);
        assert_eq!(channels_per_site(512, 5, true), 2 * (512 / 6));
        assert_eq!(channels_per_site(100, 7, false), 14);
        // Broadcast always allows at least as many channels per site.
        for n in 1..20 {
            assert!(channels_per_site(512, n, true) >= channels_per_site(512, n, false));
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell()).with_contact_yield(2.0);
        assert!(matches!(
            optimize(&soc, &config),
            Err(OptimizeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn infeasible_soc_is_reported_as_architecture_error() {
        let soc = d695();
        let config = OptimizerConfig::new(TestCell::new(
            AteSpec::new(8, 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ));
        assert!(matches!(
            optimize(&soc, &config),
            Err(OptimizeError::Architecture(_))
        ));
    }

    #[test]
    fn larger_soc_optimizes_end_to_end() {
        let soc = p22810();
        let config = OptimizerConfig::new(TestCell::new(
            AteSpec::new(512, 768 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ));
        let solution = optimize(&soc, &config).unwrap();
        assert!(solution.max_sites >= 2);
        assert!(solution.optimal.devices_per_hour > 0.0);
        assert!(solution.contacted_pads_per_site > solution.optimal.channels_per_site);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_budget_panics() {
        let _ = channels_per_site(512, 0, false);
    }
}
