//! The two-step optimizer (Section 6 of the paper).
//!
//! * **Step 1** designs the channel-minimal test architecture for the SOC on
//!   the target ATE (delegated to [`soctest_tam::step1`]). The resulting
//!   per-SOC channel count `k` determines the maximum multi-site `n_max`.
//! * **Step 2** walks the site count `n` from `n_max` down to 1. At each
//!   `n` the ATE channels freed by the abandoned sites are redistributed
//!   over the remaining sites (always to the fullest channel group), the
//!   test time and throughput are re-evaluated, and the `n` with the highest
//!   throughput is selected as `n_opt`.

use crate::error::OptimizeError;
use crate::problem::OptimizerConfig;
use crate::solution::{MultiSiteSolution, SitePoint};
use soctest_soc_model::Soc;
use soctest_tam::redistribute::redistribute_extra_width;
use soctest_tam::step1::design_with_table;
use soctest_tam::{TestArchitecture, TimeLookup};
use soctest_throughput::retest::{retest_rate, unique_devices_per_hour};
use soctest_throughput::{TestTimes, ThroughputModel, YieldParams};

/// Runs the complete two-step optimization for `soc` under `config`.
///
/// Convenience wrapper over a one-shot [`crate::engine::Engine`] request
/// with [`crate::engine::SweepAxis::None`]; callers running many
/// optimizations over the same SOC should hold an engine themselves and
/// batch the requests, sharing one demand-driven
/// [`soctest_tam::LazyTimeTable`] across all of them. The two steps only
/// probe a sparse subset of the
/// `(module, width)` space (binary searches in Step 1, one-step group
/// widenings in Step 2), so cells are computed on first probe only —
/// probed entries are bit-identical to an eager [`soctest_tam::TimeTable`]
/// build, and so is the solution.
///
/// # Errors
///
/// * [`OptimizeError::InvalidConfig`] when a yield parameter is out of
///   range,
/// * [`OptimizeError::Architecture`] when the SOC cannot be tested on the
///   target ATE at all (some module does not meet the vector-memory depth,
///   or the channel count is insufficient).
pub fn optimize(soc: &Soc, config: &OptimizerConfig) -> Result<MultiSiteSolution, OptimizeError> {
    // Pre-size the one-shot engine's table so the single request never
    // pays a build-then-rebuild.
    let engine = crate::engine::Engine::builder(soc)
        .max_channels(config.test_cell.ate.channels)
        .build();
    let response = engine.run(&crate::engine::OptimizeRequest::new(*config))?;
    Ok(response
        .into_solution()
        .expect("a SweepAxis::None request always answers with a solution"))
}

/// Runs the two-step optimization on a prebuilt table (eager
/// [`soctest_tam::TimeTable`] or [`soctest_tam::LazyTimeTable`] — any
/// [`TimeLookup`]).
///
/// Sharing the table across runs (e.g. in the Figure 6 sweeps, where only
/// the ATE changes) avoids recomputing every module's wrapper designs. The
/// table may be narrower than the channel budget implies
/// (`max_width < channels / 2`); redistribution then stops at the table's
/// width instead of panicking on an out-of-range lookup.
///
/// # Errors
///
/// See [`optimize`].
pub fn optimize_with_table<T: TimeLookup + ?Sized>(
    soc_name: &str,
    table: &T,
    config: &OptimizerConfig,
) -> Result<MultiSiteSolution, OptimizeError> {
    config.validate()?;
    let ate = &config.test_cell.ate;
    let channels = ate.channels;
    let depth = ate.vector_memory_depth;

    // Step 1: channel-minimal architecture and maximum multi-site.
    let step1 = design_with_table(table, channels, depth)?;
    let max_sites = max_sites_for(&step1, channels, config.options.stimulus_broadcast).max(1);

    // Step 2: evaluate every site count, redistributing freed channels.
    let mut curve = Vec::with_capacity(max_sites);
    for sites in 1..=max_sites {
        let architecture = architecture_for_sites(&step1, table, channels, sites, config);
        curve.push(evaluate_point(&architecture, sites, config));
    }
    let best_index = optimal_index(&curve);
    let optimal = curve[best_index].clone();
    // Redistribution is deterministic, so rebuilding the winning
    // architecture reproduces the one evaluated above exactly; this keeps
    // the loop from retaining one architecture clone per site count.
    let optimal_architecture =
        architecture_for_sites(&step1, table, channels, best_index + 1, config);

    let contacted_pads_per_site = contacted_pads(optimal.channels_per_site, config);
    Ok(MultiSiteSolution {
        soc_name: soc_name.to_string(),
        step1_architecture: step1,
        max_sites,
        curve,
        optimal,
        optimal_architecture,
        contacted_pads_per_site,
    })
}

/// The architecture used at `sites` sites: Step 1's, widened by the
/// channels freed relative to the maximum multi-site.
fn architecture_for_sites<T: TimeLookup + ?Sized>(
    step1: &TestArchitecture,
    table: &T,
    channels: usize,
    sites: usize,
    config: &OptimizerConfig,
) -> TestArchitecture {
    let available = channels_per_site(channels, sites, config.options.stimulus_broadcast);
    // Clamp the request to the widening the table can still absorb (every
    // group is capped at the table's max width). The redistribution loop
    // independently skips capped groups, so the clamp never changes the
    // resulting architecture; it makes the narrow-prebuilt-table contract
    // (max_width < available / 2 must stay panic-free) explicit at this
    // call site and keeps the requested width meaningful for bookkeeping.
    let headroom: usize = step1
        .groups
        .iter()
        .map(|g| table.max_width().saturating_sub(g.width))
        .sum();
    let extra_width = (available / 2)
        .saturating_sub(step1.total_width())
        .min(headroom);
    if extra_width > 0 {
        redistribute_extra_width(step1, table, extra_width).architecture
    } else {
        step1.clone()
    }
}

/// Index of the throughput-optimal point of a Step 2 curve.
///
/// The comparison is a plain strict `>`. An earlier formulation compared
/// against `objective + f64::EPSILON`: for objectives ≥ 4.0 — every
/// realistic devices-per-hour magnitude — the absolute machine epsilon is
/// under half an ulp, so the addend rounded away and that form already
/// behaved strictly; at smaller magnitudes it could swallow genuine
/// one-ulp improvements, making the selection scale-dependent. The strict
/// form removes that dependence.
/// Exact ties keep the earliest point: an explicit tie-break toward the
/// **lower** site count, which reaches the same throughput with fewer
/// contacted pads and less probe hardware.
pub(crate) fn optimal_index(curve: &[SitePoint]) -> usize {
    assert!(!curve.is_empty(), "at least one site must be evaluated");
    let mut best = 0;
    for (index, point) in curve.iter().enumerate().skip(1) {
        if point.objective() > curve[best].objective() {
            best = index;
        }
    }
    best
}

/// The "Step 1 only" throughput curve (the dashed line of Figure 5): the
/// architecture is kept at its channel-minimal form for every site count,
/// i.e. no channel redistribution takes place and the test time stays
/// constant.
pub fn step1_only_curve(
    step1: &TestArchitecture,
    config: &OptimizerConfig,
    max_sites: usize,
) -> Vec<SitePoint> {
    (1..=max_sites.max(1))
        .map(|sites| evaluate_point(step1, sites, config))
        .collect()
}

/// Evaluates the throughput of testing `sites` copies of the SOC in
/// parallel, each wired to `architecture`.
pub fn evaluate_point(
    architecture: &TestArchitecture,
    sites: usize,
    config: &OptimizerConfig,
) -> SitePoint {
    let ate = &config.test_cell.ate;
    let probe = &config.test_cell.probe;
    let cycles = architecture.test_time_cycles();
    let manufacturing_test_time_s = ate.cycles_to_seconds(cycles);
    let channels_used = architecture.total_channels();
    let pins = contacted_pads(channels_used, config);

    let model = ThroughputModel::new(
        TestTimes {
            index_time_s: probe.index_time_s,
            contact_test_time_s: probe.contact_test_time_s,
            manufacturing_test_time_s,
        },
        YieldParams {
            contact_yield: config.contact_yield,
            manufacturing_yield: config.manufacturing_yield,
            contacted_pins: pins,
        },
    );

    let (expected_test_time_s, devices_per_hour) = if config.options.abort_on_fail {
        (
            model.abort_on_fail_test_time(sites),
            model.devices_per_hour_abort_on_fail(sites),
        )
    } else {
        (model.times.test_time_s(), model.devices_per_hour(sites))
    };
    let unique = if config.options.retest_contact_failures {
        unique_devices_per_hour(devices_per_hour, retest_rate(pins, config.contact_yield))
    } else {
        devices_per_hour
    };

    SitePoint {
        sites,
        channels_per_site: channels_used,
        tam_width: architecture.total_width(),
        test_time_cycles: cycles,
        manufacturing_test_time_s,
        expected_test_time_s,
        devices_per_hour,
        unique_devices_per_hour: unique,
    }
}

/// Maximum multi-site supported by `architecture` on an ATE with
/// `channels` channels, with or without stimulus broadcast (Section 6,
/// Step 1).
pub fn max_sites_for(architecture: &TestArchitecture, channels: usize, broadcast: bool) -> usize {
    if broadcast {
        architecture.max_sites_with_broadcast(channels)
    } else {
        architecture.max_sites_without_broadcast(channels)
    }
}

/// Even number of ATE channels available to each of `sites` sites.
///
/// Without broadcast every site gets its own stimulus and response
/// channels: `2·⌊⌊K/n⌋ / 2⌋`. With stimulus broadcast the stimulus half is
/// shared by all sites: `k/2·(n+1) ≤ K`, i.e. `2·⌊K/(n+1)⌋`.
pub fn channels_per_site(channels: usize, sites: usize, broadcast: bool) -> usize {
    assert!(sites > 0, "at least one site is required");
    if broadcast {
        2 * (channels / (sites + 1))
    } else {
        2 * (channels / sites / 2)
    }
}

fn contacted_pads(channels_per_site: usize, config: &OptimizerConfig) -> usize {
    channels_per_site
        + config.erpct.control_pins
        + config.erpct.clock_pins
        + config.erpct.power_pins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MultiSiteOptions;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use soctest_soc_model::benchmarks::{d695, p22810};

    fn small_cell() -> TestCell {
        TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        )
    }

    #[test]
    fn optimize_d695_produces_consistent_solution() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell());
        let solution = optimize(&soc, &config).unwrap();
        assert_eq!(solution.curve.len(), solution.max_sites);
        assert!(solution.optimal.sites >= 1 && solution.optimal.sites <= solution.max_sites);
        // The optimum is the maximum of the curve.
        let best_on_curve = solution
            .curve
            .iter()
            .map(|p| p.objective())
            .fold(f64::MIN, f64::max);
        assert!((solution.optimal.objective() - best_on_curve).abs() < 1e-9);
        // Channel budget per site respected.
        for point in &solution.curve {
            let budget = channels_per_site(256, point.sites, false);
            assert!(point.channels_per_site <= budget);
        }
    }

    #[test]
    fn throughput_optimum_beats_or_matches_naive_max_sites() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell());
        let solution = optimize(&soc, &config).unwrap();
        let at_max = solution.point(solution.max_sites).unwrap();
        assert!(solution.optimal.objective() >= at_max.objective() - 1e-9);
        assert!(solution.step2_gain() >= 0.0);
    }

    #[test]
    fn broadcast_allows_more_sites_than_no_broadcast() {
        let soc = d695();
        let base = OptimizerConfig::new(small_cell());
        let broadcast = OptimizerConfig::new(small_cell())
            .with_options(MultiSiteOptions::baseline().with_broadcast());
        let without = optimize(&soc, &base).unwrap();
        let with = optimize(&soc, &broadcast).unwrap();
        assert!(with.max_sites > without.max_sites);
        assert!(with.optimal.devices_per_hour >= without.optimal.devices_per_hour);
    }

    #[test]
    fn step2_redistribution_reduces_test_time_at_low_site_counts() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell());
        let solution = optimize(&soc, &config).unwrap();
        let step1_time = solution.step1_architecture.test_time_cycles();
        // At a single site all channels are available, so the test time must
        // not be worse than Step 1's.
        let single = solution.point(1).unwrap();
        assert!(single.test_time_cycles <= step1_time);
        // At the maximum site count no extra channels exist, so the test
        // time equals Step 1's.
        let at_max = solution.point(solution.max_sites).unwrap();
        assert_eq!(at_max.test_time_cycles, step1_time);
    }

    #[test]
    fn abort_on_fail_improves_throughput_at_low_yield() {
        let soc = d695();
        let base = OptimizerConfig::new(small_cell()).with_manufacturing_yield(0.7);
        let abort = base.with_options(MultiSiteOptions::baseline().with_abort_on_fail());
        let without = optimize(&soc, &base).unwrap();
        let with = optimize(&soc, &abort).unwrap();
        let n = 1;
        assert!(
            with.point(n).unwrap().devices_per_hour
                >= without.point(n).unwrap().devices_per_hour - 1e-9
        );
    }

    #[test]
    fn retest_reduces_unique_throughput_at_low_contact_yield() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell())
            .with_contact_yield(0.995)
            .with_options(MultiSiteOptions::baseline().with_retest());
        let solution = optimize(&soc, &config).unwrap();
        for point in &solution.curve {
            assert!(point.unique_devices_per_hour < point.devices_per_hour);
        }
    }

    #[test]
    fn step1_only_curve_has_constant_test_time() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell());
        let solution = optimize(&soc, &config).unwrap();
        let curve = step1_only_curve(&solution.step1_architecture, &config, solution.max_sites);
        assert_eq!(curve.len(), solution.max_sites);
        let t0 = curve[0].test_time_cycles;
        assert!(curve.iter().all(|p| p.test_time_cycles == t0));
        // Step 1+2 is at least as good as Step 1 only, at every site count.
        for (full, only) in solution.curve.iter().zip(&curve) {
            assert!(full.devices_per_hour >= only.devices_per_hour - 1e-9);
        }
    }

    #[test]
    fn channels_per_site_formulas() {
        assert_eq!(channels_per_site(512, 5, false), 102);
        assert_eq!(channels_per_site(512, 5, true), 2 * (512 / 6));
        assert_eq!(channels_per_site(100, 7, false), 14);
        // Broadcast always allows at least as many channels per site.
        for n in 1..20 {
            assert!(channels_per_site(512, n, true) >= channels_per_site(512, n, false));
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let soc = d695();
        let config = OptimizerConfig::new(small_cell()).with_contact_yield(2.0);
        assert!(matches!(
            optimize(&soc, &config),
            Err(OptimizeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn infeasible_soc_is_reported_as_architecture_error() {
        let soc = d695();
        let config = OptimizerConfig::new(TestCell::new(
            AteSpec::new(8, 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ));
        assert!(matches!(
            optimize(&soc, &config),
            Err(OptimizeError::Architecture(_))
        ));
    }

    #[test]
    fn larger_soc_optimizes_end_to_end() {
        let soc = p22810();
        let config = OptimizerConfig::new(TestCell::new(
            AteSpec::new(512, 768 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ));
        let solution = optimize(&soc, &config).unwrap();
        assert!(solution.max_sites >= 2);
        assert!(solution.optimal.devices_per_hour > 0.0);
        assert!(solution.contacted_pads_per_site > solution.optimal.channels_per_site);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_budget_panics() {
        let _ = channels_per_site(512, 0, false);
    }

    fn point_with_objective(sites: usize, objective: f64) -> SitePoint {
        SitePoint {
            sites,
            channels_per_site: 8,
            tam_width: 4,
            test_time_cycles: 100,
            manufacturing_test_time_s: 0.1,
            expected_test_time_s: 0.1,
            devices_per_hour: objective,
            unique_devices_per_hour: objective,
        }
    }

    #[test]
    fn exact_objective_tie_selects_the_lower_site_count() {
        // Two sites reach the identical throughput: the optimum must be the
        // cheaper (lower) site count, not the later point.
        let curve = vec![
            point_with_objective(1, 950.0),
            point_with_objective(2, 1000.0),
            point_with_objective(3, 1000.0),
            point_with_objective(4, 990.0),
        ];
        assert_eq!(optimal_index(&curve), 1);
        // A strictly better later point still wins...
        let curve2 = vec![point_with_objective(1, 10.0), point_with_objective(2, 10.5)];
        assert_eq!(optimal_index(&curve2), 1);
        // ...including improvements far below the old absolute-epsilon
        // threshold's intent (sub-ulp-of-1.0 differences at small scale).
        let curve3 = vec![
            point_with_objective(1, 1.0),
            point_with_objective(2, 1.0 + 1e-13),
        ];
        assert_eq!(optimal_index(&curve3), 1);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn optimal_index_of_empty_curve_panics() {
        let _ = optimal_index(&[]);
    }

    #[test]
    fn narrow_prebuilt_table_is_clamped_not_panicking() {
        // Regression: a prebuilt table much narrower than `available / 2`
        // at low site counts must not drive redistribution into
        // out-of-range lookups; the extra width is clamped to the table's
        // headroom instead.
        let soc = d695();
        let config = OptimizerConfig::new(TestCell::new(
            AteSpec::new(256, 512 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ));
        for narrow_width in [2usize, 3, 5, 8] {
            let table = soctest_tam::TimeTable::build(&soc, narrow_width);
            let solution = optimize_with_table(soc.name(), &table, &config)
                .unwrap_or_else(|e| panic!("narrow table width {narrow_width}: {e}"));
            // No group may ever exceed the table's width.
            for group in &solution.optimal_architecture.groups {
                assert!(group.width <= narrow_width);
            }
            for group in &solution.step1_architecture.groups {
                assert!(group.width <= narrow_width);
            }
        }
    }

    #[test]
    fn lazy_and_eager_tables_produce_identical_solutions() {
        let soc = p22810();
        let config = OptimizerConfig::new(TestCell::new(
            AteSpec::new(512, 768 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ));
        let max_width = 512 / 2;
        let eager = soctest_tam::TimeTable::build(&soc, max_width);
        let lazy = soctest_tam::LazyTimeTable::new(&soc, max_width);
        let from_eager = optimize_with_table(soc.name(), &eager, &config).unwrap();
        let from_lazy = optimize_with_table(soc.name(), &lazy, &config).unwrap();
        assert_eq!(from_eager, from_lazy);
        // And the lazy table must have materialised only a fraction of the
        // full (module × width) space.
        assert!(
            lazy.cells_built() < lazy.cells_total() / 2,
            "lazy table built {}/{} cells",
            lazy.cells_built(),
            lazy.cells_total()
        );
    }
}
