//! Session-oriented optimizer engine: batched, table-sharing requests
//! behind a typed request/response schema.
//!
//! The paper's evaluation (Section 7) is thousands of optimizer
//! invocations over **one** SOC with only the test-cell and yield
//! parameters varying — the shape of a high-traffic batch service. The
//! free functions ([`crate::optimizer::optimize`] and the
//! [`crate::sweep`] family) each wire their own [`LazyTimeTable`] and
//! their own parallelism per call; the [`Engine`] turns that inside out:
//!
//! * an `Engine` is built **per SOC** (builder pattern) and owns the
//!   widest-needed demand-driven [`LazyTimeTable`] — cells computed on
//!   first probe are reused by every later request, and the per-thread
//!   wrapper-design scratch lives with the table;
//! * work arrives as serde-serialisable [`OptimizeRequest`] values — a
//!   base [`OptimizerConfig`] plus a typed [`SweepAxis`] — and leaves as
//!   [`OptimizeResponse`] values (a [`MultiSiteSolution`] or a set of
//!   [`SweepCurve`]s), in input order;
//! * [`Engine::run_batch`] serves heterogeneous batches (e.g. all of
//!   Figure 6(a) + 6(b) + 7(a) + 7(b) at once) over **one** table and the
//!   persistent work-stealing pool instead of N of each — mixed batches
//!   parallelise at the request level *and* inside each sweep (nested
//!   parallelism composes on the pool without oversubscription);
//! * the pool policy is part of the engine:
//!   [`EngineBuilder::threads`] caps the per-layer fan-out and
//!   [`EngineBuilder::sequential`] pins every request to the calling
//!   thread (results are bit-identical at any cap — see
//!   `tests/sweep_determinism.rs`).
//!
//! Results are bit-identical to the legacy free functions
//! (`tests/engine_equivalence.rs`); the free functions themselves are
//! kept as thin shims over a one-shot engine.
//!
//! # Example
//!
//! ```
//! use soctest_multisite::engine::{Engine, OptimizeRequest, OptimizeResponse, SweepAxis};
//! use soctest_multisite::problem::OptimizerConfig;
//! use soctest_ate::{AteSpec, ProbeStation, TestCell};
//! use soctest_soc_model::benchmarks::d695;
//!
//! let cell = TestCell::new(AteSpec::new(256, 96 * 1024, 5.0e6),
//!                          ProbeStation::paper_probe_station());
//! let config = OptimizerConfig::new(cell);
//! let engine = Engine::builder(&d695()).max_channels(320).build();
//!
//! // A heterogeneous batch: one plain optimization, one channel sweep.
//! let batch = [
//!     OptimizeRequest::new(config),
//!     OptimizeRequest::new(config).with_sweep(SweepAxis::Channels(vec![256, 320])),
//! ];
//! let responses = engine.run_batch(&batch);
//! let solution = responses[0].as_ref().unwrap().solution().unwrap();
//! assert!(solution.optimal.sites >= 1);
//! let curves = responses[1].as_ref().unwrap().curves().unwrap();
//! assert_eq!(curves[0].points.len(), 2);
//! ```

use crate::error::OptimizeError;
use crate::optimizer::{evaluate_point, optimize_with_table};
use crate::problem::OptimizerConfig;
use crate::service::cancel::{CancelGuarded, CancelToken};
use crate::solution::MultiSiteSolution;
use crate::sweep::{AxisValue, CostEffectiveness, SweepCurve, SweepPoint};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use soctest_ate::AteCostModel;
use soctest_soc_model::validate::{validate_soc, Severity, ValidationIssue};
use soctest_soc_model::Soc;
use soctest_tam::{max_tam_width, LazyTimeTable, RowStore, RowStoreStats, StatsEpoch, TimeLookup};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

/// A point-level memo the engine consults around every *plain*
/// optimization inside a sweep (each [`SweepAxis::Channels`] /
/// [`SweepAxis::DepthVectors`] / [`SweepAxis::ContactYield`] point, and
/// the [`SweepAxis::ManufacturingYield`] base optimization).
///
/// The key is the point's *effective* configuration — the base config
/// with the swept parameter substituted — wrapped as a plain
/// ([`SweepAxis::None`]) [`OptimizeRequest`], so a memo shared with the
/// service's exact-hit solution cache makes sweep points and standalone
/// requests one namespace: a `Channels([192, 256])` sweep answers a
/// later plain 256-channel request, and vice versa.
///
/// Implementations must be cheap on miss (a map probe) and must only
/// return responses that are bit-identical to recomputation — the engine
/// trusts `get` blindly. `soctest_multisite::service::cache::SessionPointMemo`
/// is the canonical implementation.
pub trait PointMemo: Send + Sync + std::fmt::Debug {
    /// The memoised response for `request`, if one is resident.
    fn get(&self, request: &OptimizeRequest) -> Option<OptimizeResponse>;
    /// Publishes a freshly computed `response` for `request`.
    fn put(&self, request: &OptimizeRequest, response: &OptimizeResponse);
}

/// Builds one externally-tagged enum value: `{"<tag>": body}`. Shared by
/// every hand-written enum `Serialize` impl in this crate (the vendored
/// serde derive covers unit enums only), so the wire format lives in one
/// place.
pub(crate) fn tagged(tag: &str, body: Value) -> Value {
    Value::Object(vec![(tag.to_string(), body)])
}

/// Destructures an externally-tagged enum value into `(tag, body)`,
/// rejecting anything but a single-field object. Counterpart of
/// [`tagged`] for the hand-written `Deserialize` impls.
pub(crate) fn untag<'v>(
    value: &'v Value,
    type_name: &str,
) -> Result<(&'v str, &'v Value), SerdeError> {
    let fields = value
        .as_object()
        .ok_or_else(|| SerdeError::custom(format!("expected object for {type_name}")))?;
    match fields {
        [(tag, body)] => Ok((tag.as_str(), body)),
        _ => Err(SerdeError::custom(format!(
            "expected exactly one variant tag for {type_name}"
        ))),
    }
}

/// The swept parameter of an [`OptimizeRequest`]: which test-cell or yield
/// knob varies, and over which values.
///
/// Each variant corresponds to one Section 7 experiment family; the
/// engine answers every sweeping variant with [`OptimizeResponse::Curves`]
/// and [`SweepAxis::None`] with [`OptimizeResponse::Solution`].
///
/// Serialises in real serde's externally-tagged enum format
/// (`"None"`, `{"Channels": [512, 640]}`,
/// `{"ContactYield": {"depths": [...], "contact_yields": [...]}}`, ...),
/// so request files keep working if the vendored serde is swapped for the
/// crates.io release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SweepAxis {
    /// No sweep: one two-step optimization of the request's config.
    None,
    /// ATE channel counts to sweep (Figure 6(a)). One curve results.
    Channels(Vec<usize>),
    /// Per-channel vector-memory depths in vectors to sweep
    /// (Figure 6(b)). One curve results.
    DepthVectors(Vec<u64>),
    /// Depth sweep per contact yield with re-test enabled (Figure 7(a)).
    /// One curve per contact yield results.
    ContactYield {
        /// Vector-memory depths of each curve's x axis.
        depths: Vec<u64>,
        /// One curve per contact yield `p_c`, in this order.
        contact_yields: Vec<f64>,
    },
    /// Expected test time vs. site count under abort-on-fail
    /// (Figure 7(b)). One curve per manufacturing yield results.
    ManufacturingYield {
        /// Site counts `1..=max_sites` form each curve's x axis.
        max_sites: usize,
        /// One curve per manufacturing yield `p_m`, in this order.
        manufacturing_yields: Vec<f64>,
    },
}

impl Serialize for SweepAxis {
    fn to_value(&self) -> Value {
        match self {
            SweepAxis::None => Value::String("None".to_string()),
            SweepAxis::Channels(counts) => tagged("Channels", counts.to_value()),
            SweepAxis::DepthVectors(depths) => tagged("DepthVectors", depths.to_value()),
            SweepAxis::ContactYield {
                depths,
                contact_yields,
            } => tagged(
                "ContactYield",
                Value::Object(vec![
                    ("depths".to_string(), depths.to_value()),
                    ("contact_yields".to_string(), contact_yields.to_value()),
                ]),
            ),
            SweepAxis::ManufacturingYield {
                max_sites,
                manufacturing_yields,
            } => tagged(
                "ManufacturingYield",
                Value::Object(vec![
                    ("max_sites".to_string(), max_sites.to_value()),
                    (
                        "manufacturing_yields".to_string(),
                        manufacturing_yields.to_value(),
                    ),
                ]),
            ),
        }
    }
}

impl Deserialize for SweepAxis {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if let Some(name) = value.as_str() {
            return match name {
                "None" => Ok(SweepAxis::None),
                other => Err(SerdeError::custom(format!(
                    "unknown unit variant `{other}` for SweepAxis"
                ))),
            };
        }
        let (tag, body) = untag(value, "SweepAxis")?;
        match tag {
            "Channels" => Ok(SweepAxis::Channels(Vec::from_value(body)?)),
            "DepthVectors" => Ok(SweepAxis::DepthVectors(Vec::from_value(body)?)),
            "ContactYield" => Ok(SweepAxis::ContactYield {
                depths: serde::get_field(body, "depths", "SweepAxis::ContactYield")?,
                contact_yields: serde::get_field(
                    body,
                    "contact_yields",
                    "SweepAxis::ContactYield",
                )?,
            }),
            "ManufacturingYield" => Ok(SweepAxis::ManufacturingYield {
                max_sites: serde::get_field(body, "max_sites", "SweepAxis::ManufacturingYield")?,
                manufacturing_yields: serde::get_field(
                    body,
                    "manufacturing_yields",
                    "SweepAxis::ManufacturingYield",
                )?,
            }),
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for SweepAxis"
            ))),
        }
    }
}

/// One unit of work for an [`Engine`]: a base configuration plus an
/// optional sweep axis.
///
/// Marked `#[non_exhaustive]`: construct via [`OptimizeRequest::new`] +
/// [`OptimizeRequest::with_sweep`], so future request knobs (priorities,
/// site caps, ...) can be added without breaking callers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct OptimizeRequest {
    /// The base optimizer configuration. Sweeping axes override the swept
    /// parameter per point (e.g. [`SweepAxis::Channels`] replaces
    /// `config.test_cell.ate.channels`) and leave the rest untouched.
    pub config: OptimizerConfig,
    /// Which parameter to sweep, if any.
    pub sweep: SweepAxis,
}

impl OptimizeRequest {
    /// A plain single-optimization request ([`SweepAxis::None`]).
    pub fn new(config: OptimizerConfig) -> Self {
        OptimizeRequest {
            config,
            sweep: SweepAxis::None,
        }
    }

    /// Replaces the sweep axis.
    pub fn with_sweep(mut self, sweep: SweepAxis) -> Self {
        self.sweep = sweep;
        self
    }

    /// The widest ATE channel budget the request touches: the largest
    /// swept channel count for [`SweepAxis::Channels`], the base config's
    /// channel count otherwise. This is the value to pass to
    /// [`EngineBuilder::max_channels`] when pre-sizing an engine for this
    /// request.
    pub fn peak_channels(&self) -> usize {
        match &self.sweep {
            SweepAxis::Channels(counts) => counts.iter().copied().max().unwrap_or(0),
            _ => self.config.test_cell.ate.channels,
        }
    }

    /// The table width the engine must cover to serve this request:
    /// [`max_tam_width`] of [`OptimizeRequest::peak_channels`].
    pub fn needed_width(&self) -> usize {
        max_tam_width(self.peak_channels())
    }
}

/// The engine's answer to one [`OptimizeRequest`].
///
/// Serialises in real serde's externally-tagged enum format
/// (`{"Solution": {...}}` / `{"Curves": [...]}`).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimizeResponse {
    /// The full two-step solution of a [`SweepAxis::None`] request.
    Solution(Box<MultiSiteSolution>),
    /// The labelled curves of a sweeping request, one per curve of the
    /// corresponding figure. Single-parameter axes
    /// ([`SweepAxis::Channels`], [`SweepAxis::DepthVectors`]) produce
    /// exactly one curve; the yield axes produce one curve per yield.
    Curves(Vec<SweepCurve>),
}

impl OptimizeResponse {
    /// The solution of a [`SweepAxis::None`] request, if this is one.
    pub fn solution(&self) -> Option<&MultiSiteSolution> {
        match self {
            OptimizeResponse::Solution(solution) => Some(solution),
            _ => None,
        }
    }

    /// The curves of a sweeping request, if this is one.
    pub fn curves(&self) -> Option<&[SweepCurve]> {
        match self {
            OptimizeResponse::Curves(curves) => Some(curves),
            _ => None,
        }
    }

    /// Consumes the response into its solution, if it is one.
    pub fn into_solution(self) -> Option<MultiSiteSolution> {
        match self {
            OptimizeResponse::Solution(solution) => Some(*solution),
            _ => None,
        }
    }

    /// Consumes the response into its curves, if it is one.
    pub fn into_curves(self) -> Option<Vec<SweepCurve>> {
        match self {
            OptimizeResponse::Curves(curves) => Some(curves),
            _ => None,
        }
    }
}

impl Serialize for OptimizeResponse {
    fn to_value(&self) -> Value {
        match self {
            OptimizeResponse::Solution(solution) => {
                tagged("Solution", solution.as_ref().to_value())
            }
            OptimizeResponse::Curves(curves) => tagged("Curves", curves.to_value()),
        }
    }
}

impl Deserialize for OptimizeResponse {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let (tag, body) = untag(value, "OptimizeResponse")?;
        match tag {
            "Solution" => Ok(OptimizeResponse::Solution(Box::new(
                MultiSiteSolution::from_value(body)?,
            ))),
            "Curves" => Ok(OptimizeResponse::Curves(Vec::from_value(body)?)),
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for OptimizeResponse"
            ))),
        }
    }
}

/// Builder for an [`Engine`]. Obtained from [`Engine::builder`] /
/// [`Engine::builder_arc`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    soc: Arc<Soc>,
    max_channels: usize,
    /// Parallelism cap: `None` = the full rayon pool, `Some(1)` =
    /// sequential, `Some(n)` = at most `n` concurrent tasks per layer.
    threads: Option<usize>,
    /// Shared content-addressed row store, if the session participates in
    /// cross-table / cross-process row reuse.
    row_store: Option<Arc<RowStore>>,
    /// Point-level solution memo, if the session participates in
    /// sweep-point / plain-request reuse.
    point_memo: Option<Arc<dyn PointMemo>>,
}

impl EngineBuilder {
    /// Pre-sizes the engine's table for requests up to `channels` ATE
    /// channels. Without a hint the table starts minimal and is regrown
    /// (keeping every built cell — see [`LazyTimeTable::grown`]) the
    /// first time a wider request arrives; with it, every request within
    /// the hint shares one warm table from the start. Repeated calls keep
    /// the largest hint.
    pub fn max_channels(mut self, channels: usize) -> Self {
        self.max_channels = self.max_channels.max(channels);
        self
    }

    /// Attaches a shared content-addressed [`RowStore`]: the engine's
    /// table consults it before computing any `(module, width)` cell and
    /// publishes fresh cells back, so sessions sharing the store — other
    /// engines, other SOCs with equal module shapes, or earlier processes
    /// via `RowStore::load` — never rebuild each other's rows. Responses
    /// are bit-identical with or without a store (rows are deterministic
    /// functions of module shape).
    pub fn row_store(mut self, store: Arc<RowStore>) -> Self {
        self.row_store = Some(store);
        self
    }

    /// Attaches a [`PointMemo`]: every plain optimization performed
    /// *inside* a sweep first consults `memo` under the point's
    /// effective configuration and publishes its result back on a miss.
    /// Responses are bit-identical with or without a memo (a memo must
    /// only serve what recomputation would produce); plain
    /// [`SweepAxis::None`] requests are untouched — the service caches
    /// those whole-request, one level up.
    pub fn point_memo(mut self, memo: Arc<dyn PointMemo>) -> Self {
        self.point_memo = Some(memo);
        self
    }

    /// Pins request and sweep evaluation to the calling thread instead of
    /// the rayon pool. Results are bit-identical either way (the pool
    /// preserves input order and table cells are deterministic);
    /// sequential mode is for debugging and for callers that manage
    /// parallelism themselves. Shorthand for [`EngineBuilder::threads`]
    /// with `1`.
    pub fn sequential(self) -> Self {
        self.threads(1)
    }

    /// Caps the engine at `threads` concurrent tasks per parallel layer
    /// (requests in a batch, points in a sweep). `1` means sequential;
    /// the cap is clamped up to at least 1. Without a cap the engine uses
    /// the whole work-stealing pool. Results are bit-identical at every
    /// cap — the property pinned by the scheduler stress tests in
    /// `tests/sweep_determinism.rs` and `tests/engine_equivalence.rs`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Builds the engine, preparing (but not filling) its time table.
    ///
    /// The SOC is checked with [`validate_soc`] first: warning-level
    /// findings are recorded in the engine
    /// ([`Engine::validation_issues`], counted in [`Engine::stats`]);
    /// error-level findings make the engine **unusable** — it is still
    /// returned (this constructor is infallible for backwards
    /// compatibility) but only a trivial placeholder table is allocated
    /// and every request answers [`OptimizeError::InvalidSoc`]. Service
    /// callers should prefer [`EngineBuilder::try_build`], which rejects
    /// such SOCs up front.
    pub fn build(self) -> Engine {
        let issues = validate_soc(&self.soc);
        if issues.iter().any(|i| i.severity == Severity::Error) {
            // Unusable SOC: skip the real table allocation entirely.
            let table = LazyTimeTable::new(&self.soc, 1);
            return Engine {
                table: RwLock::new(Arc::new(table)),
                soc: self.soc,
                threads: self.threads,
                point_memo: None,
                points_reused: AtomicU64::new(0),
                points_computed: AtomicU64::new(0),
                validation: EngineValidation::Invalid { issues },
            };
        }
        self.build_validated(issues)
    }

    /// Builds the engine, rejecting SOCs whose description fails
    /// [`validate_soc`] with an error-level finding **before** any table
    /// is allocated. This is the constructor the service layer uses.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::InvalidSoc`] carrying every validation finding
    /// (errors and warnings) when the SOC is unusable.
    pub fn try_build(self) -> Result<Engine, OptimizeError> {
        let issues = validate_soc(&self.soc);
        if issues.iter().any(|i| i.severity == Severity::Error) {
            return Err(OptimizeError::InvalidSoc { issues });
        }
        Ok(self.build_validated(issues))
    }

    /// Builds a validated engine; `warnings` are the (warning-only)
    /// findings of the validation pass already run by the caller.
    fn build_validated(self, warnings: Vec<ValidationIssue>) -> Engine {
        let width = max_tam_width(self.max_channels);
        let table = match &self.row_store {
            Some(store) => LazyTimeTable::with_store(&self.soc, width, Arc::clone(store)),
            None => LazyTimeTable::new(&self.soc, width),
        };
        Engine {
            table: RwLock::new(Arc::new(table)),
            soc: self.soc,
            threads: self.threads,
            point_memo: self.point_memo,
            points_reused: AtomicU64::new(0),
            points_computed: AtomicU64::new(0),
            validation: EngineValidation::Usable { warnings },
        }
    }
}

/// The outcome of the builder's [`validate_soc`] pass, kept with the
/// engine for the lifetime of the session.
#[derive(Debug)]
enum EngineValidation {
    /// The SOC is usable; any warning-level findings ride along.
    Usable { warnings: Vec<ValidationIssue> },
    /// The SOC is unusable; every request answers
    /// [`OptimizeError::InvalidSoc`] with these findings.
    Invalid { issues: Vec<ValidationIssue> },
}

/// What serving one request (or one batch) cost, attributed by epoch
/// diffs taken around the run: table materialisation, row-store traffic,
/// pool occupancy, cancellation probes, wall/CPU time.
///
/// Produced by [`Engine::run_traced`], [`Engine::run_with_cancel_traced`]
/// and [`Engine::run_batch_traced`]; aggregated with
/// [`RequestTrace::merge`] (the service folds per-request traces into its
/// final `Bye` summary this way).
///
/// Determinism: the table's `cells_built`/`cells_inherited` deltas are
/// race-deterministic at any thread count and the store's
/// `cells_computed` delta is first-insert-deterministic; wall/CPU time
/// and pool occupancy are run-specific and must stay out of
/// golden-checked output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RequestTrace {
    /// Requests accounted: 1 per traced run, the batch length per traced
    /// batch; sums under [`RequestTrace::merge`].
    pub requests: u64,
    /// Wall-clock nanoseconds spent serving.
    pub wall_nanos: u64,
    /// Process CPU nanoseconds (user + system) spent in the window, at
    /// the kernel's ~10 ms accounting granularity; 0 on platforms without
    /// `/proc/self/stat`. Process-wide, so concurrent work is included.
    pub cpu_nanos: u64,
    /// The width of the table that served the request.
    pub table_width: usize,
    /// Table materialisation deltas: cells computed fresh / replayed from
    /// the row store / inherited by a regrow, pages allocated.
    pub table: StatsEpoch,
    /// Row-store counter deltas (zeros when the engine has no store).
    pub store: RowStoreStats,
    /// Pool occupancy deltas over the window (process-global: under
    /// concurrency this includes other requests' jobs).
    pub pool: rayon::PoolStats,
    /// Cancellation-token polls observed while serving (0 without a
    /// token).
    pub cancel_probes: u64,
    /// Sweep points answered from the session's [`PointMemo`] instead of
    /// being optimized (0 without a memo, and for plain requests).
    pub points_reused: u64,
    /// Sweep points optimized fresh and published to the [`PointMemo`]
    /// (0 without a memo).
    pub points_computed: u64,
}

impl RequestTrace {
    /// Component-wise aggregation: counters sum, the table width keeps
    /// the maximum. Wall/CPU times add, so merging traces of *sequential*
    /// requests yields the span's true cost; merging concurrent traces
    /// over-counts shared wall time.
    #[must_use]
    pub fn merge(&self, other: &RequestTrace) -> RequestTrace {
        let mut merged = *self;
        merged.requests += other.requests;
        merged.wall_nanos += other.wall_nanos;
        merged.cpu_nanos += other.cpu_nanos;
        merged.table_width = self.table_width.max(other.table_width);
        merged.table.cells_computed += other.table.cells_computed;
        merged.table.cells_from_store += other.table.cells_from_store;
        merged.table.cells_inherited += other.table.cells_inherited;
        merged.table.pages_allocated += other.table.pages_allocated;
        merged.store.rows += other.store.rows;
        merged.store.cells += other.store.cells;
        merged.store.cells_computed += other.store.cells_computed;
        merged.store.cells_served += other.store.cells_served;
        merged.store.cells_loaded += other.store.cells_loaded;
        merged.pool.jobs_local += other.pool.jobs_local;
        merged.pool.jobs_stolen += other.pool.jobs_stolen;
        merged.pool.jobs_injected += other.pool.jobs_injected;
        merged.pool.inline_runs += other.pool.inline_runs;
        merged.cancel_probes += other.cancel_probes;
        merged.points_reused += other.points_reused;
        merged.points_computed += other.points_computed;
        merged
    }

    /// Cells the request materialised, however they got there — the
    /// race-deterministic total.
    #[must_use]
    pub fn cells_built(&self) -> u64 {
        self.table.cells_built()
    }
}

/// Process CPU time (user + system) in nanoseconds from
/// `/proc/self/stat`, assuming the universal 100 Hz `USER_HZ`; 0 where
/// the file is unavailable or unparsable.
fn process_cpu_nanos() -> u64 {
    if let Ok(stat) = std::fs::read_to_string("/proc/self/stat") {
        // Fields after the parenthesised command name: state is the 1st,
        // utime the 12th, stime the 13th.
        if let Some(end) = stat.rfind(')') {
            let mut fields = stat[end + 1..].split_whitespace();
            let utime = fields.nth(11).and_then(|f| f.parse::<u64>().ok());
            let stime = fields.next().and_then(|f| f.parse::<u64>().ok());
            if let (Some(utime), Some(stime)) = (utime, stime) {
                return (utime + stime) * 10_000_000;
            }
        }
    }
    0
}

/// The "before" epochs of a traced run; [`TraceTimer::finish`] diffs
/// them into a [`RequestTrace`].
struct TraceTimer {
    started: Instant,
    cpu_nanos: u64,
    table: StatsEpoch,
    store: RowStoreStats,
    pool: rayon::PoolStats,
    polls: u64,
    points_reused: u64,
    points_computed: u64,
}

impl TraceTimer {
    fn begin(engine: &Engine, table: &LazyTimeTable, token: Option<&CancelToken>) -> TraceTimer {
        TraceTimer {
            started: Instant::now(),
            cpu_nanos: process_cpu_nanos(),
            table: table.stats_epoch(),
            store: table.store().map(|s| s.stats()).unwrap_or_default(),
            pool: rayon::pool_stats(),
            polls: token.map(CancelToken::polls).unwrap_or(0),
            points_reused: engine.points_reused.load(Ordering::Relaxed),
            points_computed: engine.points_computed.load(Ordering::Relaxed),
        }
    }

    fn finish(
        self,
        requests: u64,
        engine: &Engine,
        table: &LazyTimeTable,
        token: Option<&CancelToken>,
    ) -> RequestTrace {
        RequestTrace {
            requests,
            wall_nanos: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            cpu_nanos: process_cpu_nanos().saturating_sub(self.cpu_nanos),
            table_width: table.max_width(),
            table: table.stats_epoch().delta_since(&self.table),
            store: table
                .store()
                .map(|s| s.stats())
                .unwrap_or_default()
                .delta_since(&self.store),
            pool: rayon::pool_stats().delta_since(&self.pool),
            cancel_probes: token
                .map(CancelToken::polls)
                .unwrap_or(0)
                .saturating_sub(self.polls),
            points_reused: engine
                .points_reused
                .load(Ordering::Relaxed)
                .saturating_sub(self.points_reused),
            points_computed: engine
                .points_computed
                .load(Ordering::Relaxed)
                .saturating_sub(self.points_computed),
        }
    }
}

/// A point-in-time summary of an [`Engine`] session — its warm-cache
/// footprint and the outcome of the builder's validation pass.
///
/// Versioned: [`EngineStats::VERSION`] names the snapshot schema (carried
/// in [`EngineStats::version`]), so downstream consumers aggregating or
/// persisting snapshots can detect shape changes. Aggregate across
/// sessions with [`EngineStats::aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineStats {
    /// The snapshot schema version that produced this value
    /// ([`EngineStats::VERSION`]).
    pub version: u32,
    /// The maximum TAM width the current table covers.
    pub table_width: usize,
    /// `(module, width)` cells materialised so far (computed + served by
    /// the row store + inherited across table regrows).
    pub cells_built: usize,
    /// Cells the current table computed fresh (kernel evaluations).
    pub cells_computed: usize,
    /// Cells the current table filled from the attached row store.
    pub cells_from_store: usize,
    /// Cells the current table inherited from its predecessor across
    /// table regrows.
    pub cells_inherited: usize,
    /// Total cells the current table can hold.
    pub cells_total: usize,
    /// Estimated resident bytes of the table
    /// ([`Engine::table_memory_bytes`]).
    pub table_memory_bytes: u64,
    /// Warning-level findings recorded at build time (for an unusable
    /// engine: all findings, errors included).
    pub validation_issues: usize,
    /// Whether the engine serves requests (`false` when the SOC failed
    /// validation and every request answers
    /// [`OptimizeError::InvalidSoc`]).
    pub usable: bool,
}

impl EngineStats {
    /// The current snapshot schema version. Bumped whenever a field is
    /// added, removed or changes meaning; version 2 added
    /// `cells_inherited` and this version stamp.
    pub const VERSION: u32 = 2;

    /// A zeroed snapshot — the identity of [`EngineStats::aggregate`]
    /// (vacuously `usable`, width 0).
    #[must_use]
    pub fn empty() -> EngineStats {
        EngineStats {
            version: EngineStats::VERSION,
            table_width: 0,
            cells_built: 0,
            cells_computed: 0,
            cells_from_store: 0,
            cells_inherited: 0,
            cells_total: 0,
            table_memory_bytes: 0,
            validation_issues: 0,
            usable: true,
        }
    }

    /// Folds session snapshots into one fleet-level summary: cell and
    /// byte counters sum, `table_width` keeps the maximum, and `usable`
    /// holds only if every aggregated session is usable.
    #[must_use]
    pub fn aggregate<I: IntoIterator<Item = EngineStats>>(snapshots: I) -> EngineStats {
        snapshots
            .into_iter()
            .fold(EngineStats::empty(), |sum, next| EngineStats {
                version: EngineStats::VERSION,
                table_width: sum.table_width.max(next.table_width),
                cells_built: sum.cells_built + next.cells_built,
                cells_computed: sum.cells_computed + next.cells_computed,
                cells_from_store: sum.cells_from_store + next.cells_from_store,
                cells_inherited: sum.cells_inherited + next.cells_inherited,
                cells_total: sum.cells_total + next.cells_total,
                table_memory_bytes: sum.table_memory_bytes + next.table_memory_bytes,
                validation_issues: sum.validation_issues + next.validation_issues,
                usable: sum.usable && next.usable,
            })
    }
}

/// A per-SOC optimizer session: one shared demand-driven time table, one
/// pool policy, any number of typed requests.
///
/// See the [module docs](self) for the full story and an example.
#[derive(Debug)]
pub struct Engine {
    soc: Arc<Soc>,
    /// The shared table. Rebuilt (under the write lock) when a request
    /// needs more width than it covers; snapshots are handed out as
    /// `Arc`s so in-flight requests keep their table alive.
    table: RwLock<Arc<LazyTimeTable>>,
    /// Parallelism cap; see [`EngineBuilder::threads`].
    threads: Option<usize>,
    /// Point-level solution memo; see [`EngineBuilder::point_memo`].
    point_memo: Option<Arc<dyn PointMemo>>,
    /// Lifetime count of sweep points answered from the point memo.
    points_reused: AtomicU64,
    /// Lifetime count of sweep points computed and published to the memo.
    points_computed: AtomicU64,
    /// Outcome of the builder's [`validate_soc`] pass.
    validation: EngineValidation,
}

impl Engine {
    /// Starts building an engine for `soc` (the engine keeps its own
    /// copy, so the session outlives the caller's borrow). Callers that
    /// already hold the SOC in an `Arc` — or build many sessions over one
    /// large SOC — should use [`Engine::builder_arc`], which shares the
    /// SOC instead of deep-cloning it.
    pub fn builder(soc: &Soc) -> EngineBuilder {
        Engine::builder_arc(Arc::new(soc.clone()))
    }

    /// Starts building an engine that **shares** `soc` instead of cloning
    /// it: no module or scan-chain data is copied, the session just takes
    /// one reference count. This is the constructor for tight loops over
    /// large SOCs (a 10k-module SOC deep-clone is measurable) and for
    /// serving several engine sessions over one in-memory SOC.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use soctest_multisite::engine::Engine;
    /// use soctest_soc_model::benchmarks::d695;
    ///
    /// let soc = Arc::new(d695());
    /// let engine = Engine::builder_arc(Arc::clone(&soc)).build();
    /// assert_eq!(Arc::strong_count(&soc), 2); // caller + engine — no clone
    /// assert_eq!(engine.soc_name(), "d695");
    /// ```
    pub fn builder_arc(soc: Arc<Soc>) -> EngineBuilder {
        EngineBuilder {
            soc,
            max_channels: 0,
            threads: None,
            row_store: None,
            point_memo: None,
        }
    }

    /// An engine for `soc` with the default policy: parallel sweeps, a
    /// table sized on demand.
    pub fn new(soc: &Soc) -> Self {
        Engine::builder(soc).build()
    }

    /// The SOC this engine optimizes.
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// A shared handle to the engine's SOC (no clone). Useful for
    /// building further sessions over the same SOC via
    /// [`Engine::builder_arc`].
    pub fn soc_arc(&self) -> Arc<Soc> {
        Arc::clone(&self.soc)
    }

    /// Name of the SOC this engine optimizes.
    pub fn soc_name(&self) -> &str {
        self.soc.name()
    }

    /// The maximum TAM width the current table covers.
    pub fn table_width(&self) -> usize {
        self.snapshot().max_width()
    }

    /// `(module, width)` cells materialised in the current table so far —
    /// the session's warm-cache footprint.
    pub fn cells_built(&self) -> usize {
        self.snapshot().cells_built()
    }

    /// Estimated resident bytes of the session's time table: 8 bytes per
    /// **allocated** cell (cells come in demand-allocated pages, so this
    /// follows the probed footprint, not the `modules × max_width`
    /// rectangle) plus a small fixed overhead. This is what the service's
    /// session registry charges against its memory cap — an estimate of
    /// the dominant allocation, not an exact heap measurement.
    pub fn table_memory_bytes(&self) -> u64 {
        self.snapshot().memory_bytes()
    }

    /// The validation findings recorded when the engine was built: the
    /// warning-level findings of a usable SOC, or every finding (errors
    /// included) of an unusable one.
    pub fn validation_issues(&self) -> &[ValidationIssue] {
        match &self.validation {
            EngineValidation::Usable { warnings } => warnings,
            EngineValidation::Invalid { issues } => issues,
        }
    }

    /// Whether the engine serves requests. `false` means the SOC failed
    /// validation at build time and every request answers
    /// [`OptimizeError::InvalidSoc`] (see [`EngineBuilder::build`]).
    pub fn is_usable(&self) -> bool {
        matches!(self.validation, EngineValidation::Usable { .. })
    }

    /// A point-in-time summary of the session: table footprint plus the
    /// build-time validation outcome.
    pub fn stats(&self) -> EngineStats {
        let table = self.snapshot();
        EngineStats {
            version: EngineStats::VERSION,
            table_width: table.max_width(),
            cells_built: table.cells_built(),
            cells_computed: table.cells_computed(),
            cells_from_store: table.cells_from_store(),
            cells_inherited: table.cells_inherited(),
            cells_total: table.cells_total(),
            table_memory_bytes: table.memory_bytes(),
            validation_issues: self.validation_issues().len(),
            usable: self.is_usable(),
        }
    }

    /// The [`OptimizeError::InvalidSoc`] every request must answer when
    /// the SOC failed validation, or `None` for a usable engine.
    fn invalid_error(&self) -> Option<OptimizeError> {
        match &self.validation {
            EngineValidation::Usable { .. } => None,
            EngineValidation::Invalid { issues } => Some(OptimizeError::InvalidSoc {
                issues: issues.clone(),
            }),
        }
    }

    /// Whether requests and sweeps run on the rayon pool (`true`) or
    /// inline on the calling thread.
    pub fn is_parallel(&self) -> bool {
        self.thread_cap() > 1
    }

    /// The engine's effective parallelism cap per layer: the builder's
    /// [`EngineBuilder::threads`] cap, or the pool size.
    fn thread_cap(&self) -> usize {
        self.threads
            .unwrap_or_else(rayon::current_num_threads)
            .max(1)
    }

    // Lock poisoning is recovered, not propagated: the guarded value is
    // always a valid `Arc<LazyTimeTable>` — the write section below only
    // ever *assigns* a freshly built table, so a panic mid-write cannot
    // leave a torn value behind, and a panicked reader never wrote at
    // all. Recovering keeps one panicked request from wedging every later
    // request on the session.
    fn snapshot(&self) -> Arc<LazyTimeTable> {
        Arc::clone(&self.table.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// A table covering at least `width`, regrowing the shared one if the
    /// current table is too narrow. Regrowing copies every built cell
    /// into the wider table (and keeps the attached row store, if any),
    /// so widening a session never discards warm cells —
    /// [`Engine::cells_built`] does not reset across a regrow.
    fn table_for(&self, width: usize) -> Arc<LazyTimeTable> {
        let current = self.snapshot();
        if current.max_width() >= width {
            return current;
        }
        let mut guard = self.table.write().unwrap_or_else(PoisonError::into_inner);
        if guard.max_width() < width {
            *guard = Arc::new(guard.grown(width));
        }
        Arc::clone(&guard)
    }

    /// Serves one request.
    ///
    /// # Errors
    ///
    /// [`OptimizeError`] exactly as the corresponding free function: an
    /// invalid config, an SOC that failed validation at build time, or an
    /// SOC/test-cell combination with no feasible architecture (for
    /// sweeps, the first failing point in input order).
    pub fn run(&self, request: &OptimizeRequest) -> Result<OptimizeResponse, OptimizeError> {
        if let Some(err) = self.invalid_error() {
            return Err(err);
        }
        let table = self.table_for(request.needed_width());
        self.run_on(table.as_ref(), None, request)
    }

    /// [`Engine::run`] plus attribution: returns the response together
    /// with a [`RequestTrace`] of exactly what serving it cost (epoch
    /// diffs of the table, row store and pool taken around the run).
    ///
    /// The response is bit-identical to [`Engine::run`] — tracing only
    /// reads counters. The trace's store snapshot walks the resident
    /// rows, so the untraced [`Engine::run`] stays the hot path.
    pub fn run_traced(
        &self,
        request: &OptimizeRequest,
    ) -> (Result<OptimizeResponse, OptimizeError>, RequestTrace) {
        if let Some(err) = self.invalid_error() {
            return (Err(err), self.rejection_trace(1));
        }
        let table = self.table_for(request.needed_width());
        let timer = TraceTimer::begin(self, &table, None);
        let result = self.run_on(table.as_ref(), None, request);
        let trace = timer.finish(1, self, &table, None);
        (result, trace)
    }

    /// Serves one request under a cooperative [`CancelToken`]: the token
    /// is polled at sweep-point granularity between optimizations and —
    /// through a guarded table — at table-row granularity inside each
    /// one, so both a `Cancel` frame and a deadline expiry terminate the
    /// work within a few table probes.
    ///
    /// Results are bit-identical to [`Engine::run`] when the token never
    /// fires: the guard only forwards lookups.
    ///
    /// # Errors
    ///
    /// Everything [`Engine::run`] returns, plus
    /// [`OptimizeError::Cancelled`] / [`OptimizeError::DeadlineExceeded`]
    /// when the token stops the request. Genuine panics (not cooperative
    /// stops) are *not* caught here — they unwind to the caller, where
    /// the service's per-request isolation turns them into
    /// [`OptimizeError::Internal`].
    pub fn run_with_cancel(
        &self,
        request: &OptimizeRequest,
        token: &CancelToken,
    ) -> Result<OptimizeResponse, OptimizeError> {
        if let Some(err) = self.invalid_error() {
            return Err(err);
        }
        token.check()?;
        let table = self.table_for(request.needed_width());
        self.run_cancellable_on(table.as_ref(), token, request)
    }

    /// [`Engine::run_with_cancel`] plus attribution — the traced variant
    /// the service's executor uses to build per-request `stats` blocks.
    /// The trace's `cancel_probes` counts every poll of `token` during
    /// the run (sweep-point checks and table-row probes alike).
    pub fn run_with_cancel_traced(
        &self,
        request: &OptimizeRequest,
        token: &CancelToken,
    ) -> (Result<OptimizeResponse, OptimizeError>, RequestTrace) {
        if let Some(err) = self.invalid_error() {
            return (Err(err), self.rejection_trace(1));
        }
        if let Err(stopped) = token.check() {
            let mut trace = self.rejection_trace(1);
            trace.cancel_probes = 1;
            return (Err(stopped), trace);
        }
        let table = self.table_for(request.needed_width());
        let timer = TraceTimer::begin(self, &table, Some(token));
        let result = self.run_cancellable_on(table.as_ref(), token, request);
        let trace = timer.finish(1, self, &table, Some(token));
        (result, trace)
    }

    /// The shared cancellation-guarded core: wraps the table, runs the
    /// request under `catch_unwind`, and converts a cooperative-stop
    /// unwind back into its typed error (genuine panics resume).
    fn run_cancellable_on(
        &self,
        table: &LazyTimeTable,
        token: &CancelToken,
        request: &OptimizeRequest,
    ) -> Result<OptimizeResponse, OptimizeError> {
        let guarded = CancelGuarded::new(table, token);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.run_on(&guarded, Some(token), request)
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => match CancelToken::unwind_reason(payload) {
                Ok(reason) => Err(reason),
                Err(panic_payload) => resume_unwind(panic_payload),
            },
        }
    }

    /// The trace of a request rejected before any table was touched
    /// (unusable SOC, already-stopped token): counted, zero deltas.
    fn rejection_trace(&self, requests: u64) -> RequestTrace {
        RequestTrace {
            requests,
            table_width: self.table_width(),
            ..RequestTrace::default()
        }
    }

    /// Serves a batch of heterogeneous requests over one table, answering
    /// in input order. Each request gets its own `Result`, so one
    /// infeasible request does not poison the batch.
    ///
    /// The table is widened once, up front, to the widest request, so no
    /// mid-batch rebuild drops warm cells. The whole batch — mixed or not
    /// — fans out across the work-stealing pool at the **request** level,
    /// and each sweeping request fans out again at the **point** level;
    /// the persistent pool runs both layers on one fixed set of workers
    /// (a blocked outer request helps execute inner points), so a mixed
    /// batch saturates a wide machine without oversubscribing it. The
    /// responses are bit-identical to serving every request sequentially,
    /// at any thread count (`tests/engine_equivalence.rs`,
    /// `tests/sweep_determinism.rs`).
    pub fn run_batch(
        &self,
        requests: &[OptimizeRequest],
    ) -> Vec<Result<OptimizeResponse, OptimizeError>> {
        if let Some(err) = self.invalid_error() {
            return requests.iter().map(|_| Err(err.clone())).collect();
        }
        let table = self.table_for(Engine::batch_width(requests));
        self.run_batch_on(&table, requests)
    }

    /// [`Engine::run_batch`] plus attribution: the responses (identical
    /// to the untraced batch) together with **one** [`RequestTrace`]
    /// covering the whole batch. Per-request deltas inside a parallel
    /// batch overlap in time and cannot be attributed individually — the
    /// batch-level trace is exact; callers needing per-request deltas
    /// run requests sequentially through [`Engine::run_traced`].
    pub fn run_batch_traced(
        &self,
        requests: &[OptimizeRequest],
    ) -> (Vec<Result<OptimizeResponse, OptimizeError>>, RequestTrace) {
        let count = requests.len() as u64;
        if let Some(err) = self.invalid_error() {
            let responses = requests.iter().map(|_| Err(err.clone())).collect();
            return (responses, self.rejection_trace(count));
        }
        let table = self.table_for(Engine::batch_width(requests));
        let timer = TraceTimer::begin(self, &table, None);
        let responses = self.run_batch_on(&table, requests);
        let trace = timer.finish(count, self, &table, None);
        (responses, trace)
    }

    /// The table width a batch needs: the widest request's need.
    fn batch_width(requests: &[OptimizeRequest]) -> usize {
        requests
            .iter()
            .map(OptimizeRequest::needed_width)
            .max()
            .unwrap_or(1)
    }

    /// The batch core shared by the traced and untraced paths: fans the
    /// requests out at the engine's thread cap over one sized table.
    fn run_batch_on(
        &self,
        table: &Arc<LazyTimeTable>,
        requests: &[OptimizeRequest],
    ) -> Vec<Result<OptimizeResponse, OptimizeError>> {
        let cap = self.thread_cap();
        if cap > 1 {
            rayon::par_map_init_threads(
                requests,
                || (),
                |(), request| self.run_on(table.as_ref(), None, request),
                cap,
            )
        } else {
            requests
                .iter()
                .map(|request| self.run_on(table.as_ref(), None, request))
                .collect()
        }
    }

    /// The Section 7 channels-versus-memory upgrade comparison, evaluated
    /// on the engine's shared table.
    ///
    /// # Errors
    ///
    /// Fails if any of the three optimizations (base, deeper memory, more
    /// channels) fails.
    pub fn cost_effectiveness(
        &self,
        config: &OptimizerConfig,
        prices: &AteCostModel,
    ) -> Result<CostEffectiveness, OptimizeError> {
        if let Some(err) = self.invalid_error() {
            return Err(err);
        }
        let base_ate = config.test_cell.ate;
        let budget = prices.memory_doubling_cost(&base_ate, 1);
        let extra_channels = prices.channels_affordable(budget);
        let upgraded_channels = base_ate.channels + extra_channels;

        let table = self.table_for(max_tam_width(upgraded_channels));
        let channel_counts = [base_ate.channels, upgraded_channels];
        let channel_points = self.channel_points(table.as_ref(), None, config, &channel_counts)?;

        let mut deeper_cfg = *config;
        deeper_cfg.test_cell.ate = base_ate.with_depth(base_ate.vector_memory_depth * 2);
        let deeper = optimize_with_table(self.soc.name(), table.as_ref(), &deeper_cfg)?;

        Ok(CostEffectiveness {
            base_devices_per_hour: channel_points[0].optimal.objective(),
            memory_upgrade_cost_usd: budget,
            memory_upgrade_devices_per_hour: deeper.optimal.objective(),
            equivalent_extra_channels: extra_channels,
            channel_upgrade_cost_usd: prices
                .channel_upgrade_cost(base_ate.channels, upgraded_channels),
            channel_upgrade_devices_per_hour: channel_points[1].optimal.objective(),
        })
    }

    /// Serves one request against an already-sized table snapshot.
    ///
    /// Generic over [`TimeLookup`] so the same dispatch serves both the
    /// plain shared table and a cancellation-guarded view of it; `token`
    /// (when present) is polled between sweep points.
    fn run_on<L: TimeLookup + Sync + ?Sized>(
        &self,
        table: &L,
        token: Option<&CancelToken>,
        request: &OptimizeRequest,
    ) -> Result<OptimizeResponse, OptimizeError> {
        let config = &request.config;
        match &request.sweep {
            SweepAxis::None => optimize_with_table(self.soc.name(), table, config)
                .map(|solution| OptimizeResponse::Solution(Box::new(solution))),
            SweepAxis::Channels(counts) => {
                self.channel_points(table, token, config, counts)
                    .map(|points| {
                        OptimizeResponse::Curves(vec![SweepCurve {
                            label: "channels".to_string(),
                            points,
                        }])
                    })
            }
            SweepAxis::DepthVectors(depths) => {
                self.depth_points(table, token, config, depths)
                    .map(|points| {
                        OptimizeResponse::Curves(vec![SweepCurve {
                            label: "depth".to_string(),
                            points,
                        }])
                    })
            }
            SweepAxis::ContactYield {
                depths,
                contact_yields,
            } => self
                .contact_yield_curves(table, token, config, depths, contact_yields)
                .map(OptimizeResponse::Curves),
            SweepAxis::ManufacturingYield {
                max_sites,
                manufacturing_yields,
            } => self
                .abort_on_fail_curves(table, token, config, *max_sites, manufacturing_yields)
                .map(OptimizeResponse::Curves),
        }
    }

    /// Polls a request's token between sweep points, mapping a fired
    /// token to its typed error. A `None` token (the plain [`Engine::run`]
    /// / [`Engine::run_batch`] paths) costs one predictable branch.
    fn check_token(token: Option<&CancelToken>) -> Result<(), OptimizeError> {
        match token {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    /// Maps `f` over `values` under the engine's pool policy, preserving
    /// input order; the result is the points, or the first error in input
    /// order. Runs on the work-stealing pool (capped at the engine's
    /// thread cap), nesting freely under a parallel [`Engine::run_batch`].
    fn map_points<T, F>(&self, values: &[T], f: F) -> Result<Vec<SweepPoint>, OptimizeError>
    where
        T: Sync,
        F: Fn(&T) -> Result<SweepPoint, OptimizeError> + Sync,
    {
        let cap = self.thread_cap();
        if cap > 1 {
            rayon::par_map_init_threads(values, || (), |(), value| f(value), cap)
                .into_iter()
                .collect()
        } else {
            values.iter().map(f).collect()
        }
    }

    /// The plain optimization behind one sweep point: the point's
    /// *effective* configuration (base config with the swept parameter
    /// substituted), answered through the session's [`PointMemo`] when
    /// one is attached. The memo key is the effective config wrapped as
    /// a [`SweepAxis::None`] request — exactly the key a standalone
    /// request for this configuration would carry, which is what makes
    /// sweep points and plain requests one cache namespace. Without a
    /// memo this is a plain [`optimize_with_table`] call.
    fn point_solution<L: TimeLookup + Sync + ?Sized>(
        &self,
        table: &L,
        cfg: &OptimizerConfig,
    ) -> Result<MultiSiteSolution, OptimizeError> {
        let Some(memo) = &self.point_memo else {
            return optimize_with_table(self.soc.name(), table, cfg);
        };
        let key = OptimizeRequest::new(*cfg);
        if let Some(solution) = memo.get(&key).and_then(OptimizeResponse::into_solution) {
            self.points_reused.fetch_add(1, Ordering::Relaxed);
            return Ok(solution);
        }
        let solution = optimize_with_table(self.soc.name(), table, cfg)?;
        memo.put(
            &key,
            &OptimizeResponse::Solution(Box::new(solution.clone())),
        );
        self.points_computed.fetch_add(1, Ordering::Relaxed);
        Ok(solution)
    }

    /// Figure 6(a): one optimization per ATE channel count.
    ///
    /// An all-zero (or empty) channel list yields no points — the legacy
    /// `channel_sweep` contract.
    fn channel_points<L: TimeLookup + Sync + ?Sized>(
        &self,
        table: &L,
        token: Option<&CancelToken>,
        config: &OptimizerConfig,
        channel_counts: &[usize],
    ) -> Result<Vec<SweepPoint>, OptimizeError> {
        if channel_counts.iter().copied().max().unwrap_or(0) == 0 {
            return Ok(Vec::new());
        }
        self.map_points(channel_counts, |&channels| {
            Engine::check_token(token)?;
            let mut cfg = *config;
            cfg.test_cell.ate = cfg.test_cell.ate.with_channels(channels);
            self.point_solution(table, &cfg).map(|solution| SweepPoint {
                parameter: AxisValue::Channels(channels),
                max_sites: solution.max_sites,
                optimal: solution.optimal,
            })
        })
    }

    /// Figure 6(b): one optimization per vector-memory depth.
    fn depth_points<L: TimeLookup + Sync + ?Sized>(
        &self,
        table: &L,
        token: Option<&CancelToken>,
        config: &OptimizerConfig,
        depths: &[u64],
    ) -> Result<Vec<SweepPoint>, OptimizeError> {
        self.map_points(depths, |&depth| {
            Engine::check_token(token)?;
            let mut cfg = *config;
            cfg.test_cell.ate = cfg.test_cell.ate.with_depth(depth);
            self.point_solution(table, &cfg).map(|solution| SweepPoint {
                parameter: AxisValue::DepthVectors(depth),
                max_sites: solution.max_sites,
                optimal: solution.optimal,
            })
        })
    }

    /// Figure 7(a): a depth sweep per contact yield, re-test always on
    /// (that is the effect the figure demonstrates).
    fn contact_yield_curves<L: TimeLookup + Sync + ?Sized>(
        &self,
        table: &L,
        token: Option<&CancelToken>,
        config: &OptimizerConfig,
        depths: &[u64],
        contact_yields: &[f64],
    ) -> Result<Vec<SweepCurve>, OptimizeError> {
        let mut curves = Vec::with_capacity(contact_yields.len());
        for &contact_yield in contact_yields {
            Engine::check_token(token)?;
            let mut cfg = *config;
            cfg.contact_yield = contact_yield;
            cfg.options.retest_contact_failures = true;
            let points = self.depth_points(table, token, &cfg, depths)?;
            curves.push(SweepCurve {
                label: format!("pc = {contact_yield}"),
                points,
            });
        }
        Ok(curves)
    }

    /// Figure 7(b): expected test time vs. site count per manufacturing
    /// yield, with the architecture fixed at the Step 1 (channel-minimal)
    /// design — as in the paper, the point of the figure is the yield
    /// effect, not the channel redistribution.
    fn abort_on_fail_curves<L: TimeLookup + Sync + ?Sized>(
        &self,
        table: &L,
        token: Option<&CancelToken>,
        config: &OptimizerConfig,
        max_sites: usize,
        manufacturing_yields: &[f64],
    ) -> Result<Vec<SweepCurve>, OptimizeError> {
        // The base optimization is a plain run of the request's config —
        // memoised like any other point. The per-site points below are
        // `evaluate_point` closed forms, not optimizations, so they stay
        // outside the memo.
        let base = self.point_solution(table, config)?;
        let architecture = base.step1_architecture;

        let mut curves = Vec::with_capacity(manufacturing_yields.len());
        for &manufacturing_yield in manufacturing_yields {
            let mut cfg = *config;
            cfg.manufacturing_yield = manufacturing_yield;
            cfg.options.abort_on_fail = true;
            // The inner loop never probes the table, so the guard cannot
            // observe a stop here — poll the token per site point instead.
            let mut points = Vec::with_capacity(max_sites.max(1));
            for sites in 1..=max_sites.max(1) {
                Engine::check_token(token)?;
                points.push(SweepPoint {
                    parameter: AxisValue::Sites(sites),
                    max_sites,
                    optimal: evaluate_point(&architecture, sites, &cfg),
                });
            }
            curves.push(SweepCurve {
                label: format!("pm = {manufacturing_yield}"),
                points,
            });
        }
        Ok(curves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use soctest_soc_model::benchmarks::d695;

    fn config() -> OptimizerConfig {
        OptimizerConfig::new(TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ))
    }

    #[test]
    fn single_request_produces_a_solution() {
        let engine = Engine::new(&d695());
        let response = engine.run(&OptimizeRequest::new(config())).unwrap();
        let solution = response.solution().expect("None axis answers Solution");
        assert!(solution.optimal.sites >= 1);
        assert!(response.curves().is_none());
    }

    #[test]
    fn table_grows_on_demand_and_keeps_the_widest() {
        let engine = Engine::new(&d695());
        assert_eq!(engine.table_width(), 1);
        engine.run(&OptimizeRequest::new(config())).unwrap();
        assert_eq!(engine.table_width(), 128);
        assert!(engine.cells_built() > 0);
        // A narrower request reuses the wide table.
        let mut narrow = config();
        narrow.test_cell.ate = narrow.test_cell.ate.with_channels(64);
        engine.run(&OptimizeRequest::new(narrow)).unwrap();
        assert_eq!(engine.table_width(), 128);
    }

    #[test]
    fn max_channels_hint_presizes_the_table() {
        let engine = Engine::builder(&d695()).max_channels(320).build();
        assert_eq!(engine.table_width(), 160);
    }

    #[test]
    fn regrow_keeps_warm_cells_instead_of_resetting() {
        // Regression: regrowing the table to a wider width used to build
        // a fresh table, discarding every built cell.
        let engine = Engine::new(&d695());
        let mut narrow = config();
        narrow.test_cell.ate = narrow.test_cell.ate.with_channels(64);
        let narrow_response = engine.run(&OptimizeRequest::new(narrow)).unwrap();
        let before = engine.stats();
        assert!(before.cells_built > 0);

        // A wider request forces a regrow (64-channel table -> 128-wide).
        engine.run(&OptimizeRequest::new(config())).unwrap();
        let after = engine.stats();
        assert_eq!(after.table_width, 128);
        assert!(
            after.cells_built >= before.cells_built,
            "cells_built reset across regrow: {} -> {}",
            before.cells_built,
            after.cells_built
        );

        // Re-serving the narrow request probes only inherited cells.
        let computed_after_regrow = engine.stats().cells_computed;
        let replay = engine.run(&OptimizeRequest::new(narrow)).unwrap();
        assert_eq!(replay, narrow_response);
        assert_eq!(
            engine.stats().cells_computed,
            computed_after_regrow,
            "inherited cells were recomputed"
        );
    }

    #[test]
    fn traced_run_attributes_table_deltas_per_request() {
        let engine = Engine::new(&d695());
        let (first, t1) = engine.run_traced(&OptimizeRequest::new(config()));
        assert_eq!(t1.requests, 1);
        assert_eq!(t1.table_width, 128);
        assert!(t1.table.cells_built() > 0);
        assert!(t1.cells_built() == t1.table.cells_built());
        // Re-serving the identical request touches no new cells.
        let (second, t2) = engine.run_traced(&OptimizeRequest::new(config()));
        assert_eq!(second.unwrap(), first.unwrap());
        assert_eq!(t2.table.cells_built(), 0);
        // Sequential per-request deltas sum to the engine-lifetime total.
        let merged = t1.merge(&t2);
        assert_eq!(merged.requests, 2);
        assert_eq!(
            merged.table.cells_built(),
            engine.stats().cells_built as u64
        );
    }

    #[test]
    fn traced_batch_covers_the_whole_batch() {
        let engine = Engine::new(&d695());
        let batch = [
            OptimizeRequest::new(config()),
            OptimizeRequest::new(config()).with_sweep(SweepAxis::Channels(vec![192, 256])),
        ];
        let (responses, trace) = engine.run_batch_traced(&batch);
        assert_eq!(responses.len(), 2);
        assert_eq!(trace.requests, 2);
        assert_eq!(trace.table.cells_built(), engine.stats().cells_built as u64);
        assert_eq!(
            responses,
            engine.run_batch(&batch),
            "tracing changed results"
        );
    }

    #[test]
    fn traced_run_on_an_unusable_engine_reports_a_counted_rejection() {
        // An empty SOC fails validation with an error-level finding.
        let engine = Engine::new(&Soc::new("empty"));
        assert!(!engine.is_usable());
        let (result, trace) = engine.run_traced(&OptimizeRequest::new(config()));
        assert!(matches!(result, Err(OptimizeError::InvalidSoc { .. })));
        assert_eq!(trace.requests, 1);
        assert_eq!(trace.table.cells_built(), 0);
    }

    #[test]
    fn engine_stats_snapshot_is_versioned_and_aggregates() {
        let engine = Engine::new(&d695());
        engine.run(&OptimizeRequest::new(config())).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.version, EngineStats::VERSION);
        assert_eq!(
            stats.cells_built,
            stats.cells_computed + stats.cells_from_store + stats.cells_inherited
        );
        let total = EngineStats::aggregate([stats, stats]);
        assert_eq!(total.cells_built, 2 * stats.cells_built);
        assert_eq!(total.cells_total, 2 * stats.cells_total);
        assert_eq!(total.table_width, stats.table_width);
        assert!(total.usable);
        assert_eq!(EngineStats::aggregate([]), EngineStats::empty());
    }

    #[test]
    fn store_backed_engine_is_bit_identical_and_shares_rows() {
        use soctest_tam::RowStore;
        let store = Arc::new(RowStore::new());
        let plain = Engine::new(&d695());
        let backed = Engine::builder(&d695())
            .row_store(Arc::clone(&store))
            .build();
        let request =
            OptimizeRequest::new(config()).with_sweep(SweepAxis::Channels(vec![192, 256]));
        assert_eq!(backed.run(&request).unwrap(), plain.run(&request).unwrap());
        let computed = store.stats().cells_computed;
        assert!(computed > 0);

        // A second engine over the same store computes nothing new.
        let second = Engine::builder(&d695())
            .row_store(Arc::clone(&store))
            .build();
        assert_eq!(second.run(&request).unwrap(), plain.run(&request).unwrap());
        assert_eq!(store.stats().cells_computed, computed);
        assert_eq!(second.stats().cells_computed, 0);
        assert!(second.stats().cells_from_store > 0);
    }

    /// A minimal [`PointMemo`]: plain map from the canonical request
    /// rendering to the response, no eviction. Stands in for the
    /// service's `SessionPointMemo` so the engine-side contract is
    /// testable without a `SolutionCache`.
    #[derive(Debug, Default)]
    struct MapMemo {
        map: std::sync::Mutex<std::collections::HashMap<String, OptimizeResponse>>,
    }

    impl PointMemo for MapMemo {
        fn get(&self, request: &OptimizeRequest) -> Option<OptimizeResponse> {
            let key = crate::service::cache::canonical_request(request);
            self.map.lock().unwrap().get(&key).cloned()
        }
        fn put(&self, request: &OptimizeRequest, response: &OptimizeResponse) {
            let key = crate::service::cache::canonical_request(request);
            self.map.lock().unwrap().insert(key, response.clone());
        }
    }

    #[test]
    fn memo_backed_sweeps_reuse_points_bit_identically() {
        let sweep = OptimizeRequest::new(config()).with_sweep(SweepAxis::Channels(vec![192, 256]));
        let bare = Engine::new(&d695()).run(&sweep).unwrap();

        let memo = Arc::new(MapMemo::default());
        let engine = Engine::builder(&d695())
            .point_memo(Arc::clone(&memo) as Arc<dyn PointMemo>)
            .build();
        let (first, cold) = engine.run_traced(&sweep);
        assert_eq!(first.unwrap(), bare, "the memo changed the response");
        assert_eq!(cold.points_computed, 2);
        assert_eq!(cold.points_reused, 0);

        // The repeat sweep answers every point from the memo.
        let (second, warm) = engine.run_traced(&sweep);
        assert_eq!(second.unwrap(), bare);
        assert_eq!(warm.points_reused, 2);
        assert_eq!(warm.points_computed, 0);

        // Each point was published under the *plain* effective-config
        // key — exactly what a standalone request for that channel
        // count would ask for, and bit-identical to computing it.
        let mut effective = config();
        effective.test_cell.ate = effective.test_cell.ate.with_channels(192);
        let plain_key = OptimizeRequest::new(effective);
        let memoised = memo
            .get(&plain_key)
            .expect("sweep points live under the plain request key");
        assert_eq!(memoised, Engine::new(&d695()).run(&plain_key).unwrap());
    }

    #[test]
    fn batch_answers_in_input_order_with_per_request_errors() {
        let engine = Engine::new(&d695());
        let mut tiny = config();
        tiny.test_cell.ate = tiny.test_cell.ate.with_channels(4);
        let batch = [
            OptimizeRequest::new(config()),
            OptimizeRequest::new(tiny), // infeasible: 4 channels
            OptimizeRequest::new(config())
                .with_sweep(SweepAxis::DepthVectors(vec![96 * 1024, 128 * 1024])),
        ];
        let responses = engine.run_batch(&batch);
        assert_eq!(responses.len(), 3);
        assert!(responses[0].is_ok());
        assert!(matches!(responses[1], Err(OptimizeError::Architecture(_))));
        let curves = responses[2].as_ref().unwrap().curves().unwrap();
        assert_eq!(curves.len(), 1);
        assert_eq!(curves[0].points.len(), 2);
        assert_eq!(
            curves[0].points[0].parameter,
            AxisValue::DepthVectors(96 * 1024)
        );
    }

    #[test]
    fn builder_arc_shares_the_soc_without_cloning() {
        let soc = Arc::new(d695());
        let engine = Engine::builder_arc(Arc::clone(&soc)).build();
        // Caller + engine: the builder took a reference, not a deep copy.
        assert_eq!(Arc::strong_count(&soc), 2);
        let handle = engine.soc_arc();
        assert_eq!(Arc::strong_count(&soc), 3);
        assert!(Arc::ptr_eq(&soc, &handle));
        // The shared-SOC engine answers exactly like a cloning one.
        let cloned = Engine::builder(&soc).build();
        assert_eq!(
            engine.run(&OptimizeRequest::new(config())).unwrap(),
            cloned.run(&OptimizeRequest::new(config())).unwrap()
        );
        drop(engine);
        drop(handle);
        assert_eq!(Arc::strong_count(&soc), 1);
    }

    #[test]
    fn thread_cap_is_clamped_and_reported() {
        let soc = d695();
        assert!(!Engine::builder(&soc).threads(0).build().is_parallel());
        assert!(!Engine::builder(&soc).sequential().build().is_parallel());
        let capped = Engine::builder(&soc).threads(2).build();
        assert_eq!(capped.thread_cap(), 2);
        assert!(capped.is_parallel());
    }

    #[test]
    fn mixed_batch_is_identical_at_thread_caps_one_two_and_n() {
        let soc = d695();
        let batch = [
            OptimizeRequest::new(config()),
            OptimizeRequest::new(config())
                .with_sweep(SweepAxis::Channels(vec![128, 192, 256, 320])),
            OptimizeRequest::new(config()).with_sweep(SweepAxis::DepthVectors(vec![
                64 * 1024,
                96 * 1024,
                128 * 1024,
            ])),
        ];
        let sequential = Engine::builder(&soc).sequential().build().run_batch(&batch);
        for cap in [2usize, rayon::current_num_threads().max(2)] {
            let parallel = Engine::builder(&soc).threads(cap).build().run_batch(&batch);
            assert_eq!(
                parallel.len(),
                sequential.len(),
                "batch length changed at cap {cap}"
            );
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(
                    p.as_ref().unwrap(),
                    s.as_ref().unwrap(),
                    "nested-parallel batch diverged at cap {cap}"
                );
            }
        }
    }

    #[test]
    fn sequential_engine_matches_the_parallel_one() {
        let soc = d695();
        let request = OptimizeRequest::new(config())
            .with_sweep(SweepAxis::Channels(vec![128, 192, 256, 320]));
        let parallel = Engine::new(&soc).run(&request).unwrap();
        let sequential_engine = Engine::builder(&soc).sequential().build();
        assert!(!sequential_engine.is_parallel());
        let sequential = sequential_engine.run(&request).unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn zero_channel_sweep_yields_no_points() {
        let engine = Engine::new(&d695());
        let response = engine
            .run(&OptimizeRequest::new(config()).with_sweep(SweepAxis::Channels(vec![0, 0])))
            .unwrap();
        assert!(response.curves().unwrap()[0].points.is_empty());
    }

    #[test]
    fn sweep_axis_serialises_in_externally_tagged_format() {
        let axes = [
            SweepAxis::None,
            SweepAxis::Channels(vec![512, 640]),
            SweepAxis::DepthVectors(vec![5 * 1024 * 1024]),
            SweepAxis::ContactYield {
                depths: vec![96 * 1024],
                contact_yields: vec![0.99, 1.0],
            },
            SweepAxis::ManufacturingYield {
                max_sites: 8,
                manufacturing_yields: vec![1.0, 0.7],
            },
        ];
        for axis in &axes {
            let json = serde_json::to_string(axis).unwrap();
            let back: SweepAxis = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, axis, "round trip failed for {json}");
        }
        assert_eq!(serde_json::to_string(&SweepAxis::None).unwrap(), "\"None\"");
        assert_eq!(
            serde_json::to_string(&SweepAxis::Channels(vec![2])).unwrap(),
            "{\"Channels\":[2]}"
        );
    }

    #[test]
    fn requests_and_responses_round_trip_through_json() {
        let engine = Engine::new(&d695());
        let request =
            OptimizeRequest::new(config()).with_sweep(SweepAxis::Channels(vec![192, 256]));
        let request_back: OptimizeRequest =
            serde_json::from_str(&serde_json::to_string(&request).unwrap()).unwrap();
        assert_eq!(request_back, request);

        let response = engine.run(&request).unwrap();
        let response_back: OptimizeResponse =
            serde_json::from_str(&serde_json::to_string(&response).unwrap()).unwrap();
        // Integer fields and structure survive exactly; floats may lose
        // the last ULP through the text round trip, so compare the JSON
        // renderings (shortest-round-trip formatting is stable).
        assert_eq!(
            serde_json::to_string(&response_back).unwrap(),
            serde_json::to_string(&response).unwrap()
        );
    }

    #[test]
    fn unknown_variant_tags_are_rejected() {
        assert!(serde_json::from_str::<SweepAxis>("\"Nope\"").is_err());
        assert!(serde_json::from_str::<SweepAxis>("{\"Nope\":[1]}").is_err());
        assert!(serde_json::from_str::<OptimizeResponse>("{\"Nope\":[]}").is_err());
    }
}
