use soctest_ate::spec::MEGA_VECTORS;
use soctest_ate::AteCostModel;
use soctest_multisite::sweep::{channel_sweep, cost_effectiveness, depth_sweep};
use soctest_multisite::{
    optimizer::optimize,
    problem::{MultiSiteOptions, OptimizerConfig},
};
use soctest_soc_model::synthetic::pnx8550_like;

fn main() {
    let soc = pnx8550_like();
    let config = OptimizerConfig::paper_section7();
    let t0 = std::time::Instant::now();
    let sol = optimize(&soc, &config).unwrap();
    println!(
        "no-broadcast: n_max={} n_opt={} k={} tm={:.3}s Dth={:.0} ({:?})",
        sol.max_sites,
        sol.optimal.sites,
        sol.optimal.channels_per_site,
        sol.optimal.manufacturing_test_time_s,
        sol.optimal.devices_per_hour,
        t0.elapsed()
    );

    let bc = config.with_options(MultiSiteOptions::baseline().with_broadcast());
    let solb = optimize(&soc, &bc).unwrap();
    println!(
        "broadcast:    n_max={} n_opt={} k={} tm={:.3}s Dth={:.0} gain_step2_vs_nmax={:.1}%",
        solb.max_sites,
        solb.optimal.sites,
        solb.optimal.channels_per_site,
        solb.optimal.manufacturing_test_time_s,
        solb.optimal.devices_per_hour,
        100.0 * solb.step2_gain()
    );

    let depths: Vec<u64> = (5..=14).map(|m| m * MEGA_VECTORS).collect();
    let dp = depth_sweep(&soc, &config, &depths).unwrap();
    println!("depth sweep (M -> Dth):");
    for p in &dp {
        println!(
            "  {:>4.0}M  {:>8.0}  n_opt={} n_max={}",
            p.parameter / MEGA_VECTORS as f64,
            p.optimal.devices_per_hour,
            p.optimal.sites,
            p.max_sites
        );
    }

    let chans: Vec<usize> = (0..9).map(|i| 512 + 64 * i).collect();
    let cp = channel_sweep(&soc, &config, &chans).unwrap();
    println!("channel sweep:");
    for p in &cp {
        println!(
            "  {:>5.0}  {:>8.0}  n_opt={}",
            p.parameter, p.optimal.devices_per_hour, p.optimal.sites
        );
    }

    let ce = cost_effectiveness(&soc, &config, &AteCostModel::paper_prices()).unwrap();
    println!(
        "cost: memory +{:.1}% (${:.0}), channels(+{}) +{:.1}% (${:.0}) memory_wins={}",
        100.0 * ce.memory_gain(),
        ce.memory_upgrade_cost_usd,
        ce.equivalent_extra_channels,
        100.0 * ce.channel_gain(),
        ce.channel_upgrade_cost_usd,
        ce.memory_wins()
    );
    println!("total elapsed {:?}", t0.elapsed());
}
