//! Calibration run on the PNX8550 stand-in through the session-oriented
//! engine API: one `Engine`, one shared time table, a heterogeneous batch
//! of requests covering the paper's Section 7 operating points.

use soctest_ate::spec::MEGA_VECTORS;
use soctest_ate::AteCostModel;
use soctest_multisite::engine::{Engine, OptimizeRequest, SweepAxis};
use soctest_multisite::problem::{MultiSiteOptions, OptimizerConfig};
use soctest_soc_model::synthetic::pnx8550_like;

fn main() {
    let soc = pnx8550_like();
    let config = OptimizerConfig::paper_section7();
    let t0 = std::time::Instant::now();

    // One engine per SOC: every request below shares its time table.
    let engine = Engine::builder(&soc).max_channels(1024).build();

    let broadcast_config = config.with_options(MultiSiteOptions::baseline().with_broadcast());
    let depths: Vec<u64> = (5..=14).map(|m| m * MEGA_VECTORS).collect();
    let chans: Vec<usize> = (0..9).map(|i| 512 + 64 * i).collect();
    let batch = [
        OptimizeRequest::new(config),
        OptimizeRequest::new(broadcast_config),
        OptimizeRequest::new(config).with_sweep(SweepAxis::DepthVectors(depths)),
        OptimizeRequest::new(config).with_sweep(SweepAxis::Channels(chans)),
    ];
    let mut responses = engine.run_batch(&batch).into_iter();
    let mut next = || responses.next().expect("batch answers every request");

    let sol = next().unwrap().into_solution().expect("plain request");
    println!(
        "no-broadcast: n_max={} n_opt={} k={} tm={:.3}s Dth={:.0} ({:?})",
        sol.max_sites,
        sol.optimal.sites,
        sol.optimal.channels_per_site,
        sol.optimal.manufacturing_test_time_s,
        sol.optimal.devices_per_hour,
        t0.elapsed()
    );

    let solb = next().unwrap().into_solution().expect("plain request");
    println!(
        "broadcast:    n_max={} n_opt={} k={} tm={:.3}s Dth={:.0} gain_step2_vs_nmax={:.1}%",
        solb.max_sites,
        solb.optimal.sites,
        solb.optimal.channels_per_site,
        solb.optimal.manufacturing_test_time_s,
        solb.optimal.devices_per_hour,
        100.0 * solb.step2_gain()
    );

    let dp = next().unwrap().into_curves().expect("sweep request");
    println!("depth sweep (M -> Dth):");
    for p in &dp[0].points {
        println!(
            "  {:>4.0}M  {:>8.0}  n_opt={} n_max={}",
            p.parameter.as_f64() / MEGA_VECTORS as f64,
            p.optimal.devices_per_hour,
            p.optimal.sites,
            p.max_sites
        );
    }

    let cp = next().unwrap().into_curves().expect("sweep request");
    println!("channel sweep:");
    for p in &cp[0].points {
        println!(
            "  {:>5}  {:>8.0}  n_opt={}",
            p.parameter, p.optimal.devices_per_hour, p.optimal.sites
        );
    }

    let ce = engine
        .cost_effectiveness(&config, &AteCostModel::paper_prices())
        .unwrap();
    println!(
        "cost: memory +{:.1}% (${:.0}), channels(+{}) +{:.1}% (${:.0}) memory_wins={}",
        100.0 * ce.memory_gain(),
        ce.memory_upgrade_cost_usd,
        ce.equivalent_extra_channels,
        100.0 * ce.channel_gain(),
        ce.channel_upgrade_cost_usd,
        ce.memory_wins()
    );
    println!(
        "total elapsed {:?} ({} table cells materialised once, shared by all requests)",
        t0.elapsed(),
        engine.cells_built()
    );
}
