//! Determinism proofs for the rayon-parallel sweeps: results must be
//! byte-identical to evaluating every sweep point sequentially, and stable
//! across repeated runs.

use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::optimizer::optimize_with_table;
use soctest_multisite::problem::OptimizerConfig;
use soctest_multisite::report::to_json;
use soctest_multisite::sweep::{channel_sweep, depth_sweep, AxisValue, SweepPoint};
use soctest_soc_model::benchmarks::d695;
use soctest_tam::TimeTable;

fn config() -> OptimizerConfig {
    OptimizerConfig::new(TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    ))
}

#[test]
fn channel_sweep_matches_sequential_evaluation() {
    let soc = d695();
    let channels = [128usize, 160, 192, 224, 256, 320];
    let parallel = channel_sweep(&soc, &config(), &channels).unwrap();

    // The sequential path: the same per-point computation, one at a time.
    let table = TimeTable::build(&soc, channels.iter().max().unwrap() / 2);
    let sequential: Vec<SweepPoint> = channels
        .iter()
        .map(|&k| {
            let mut cfg = config();
            cfg.test_cell.ate = cfg.test_cell.ate.with_channels(k);
            let solution = optimize_with_table(soc.name(), &table, &cfg).unwrap();
            SweepPoint {
                parameter: AxisValue::Channels(k),
                max_sites: solution.max_sites,
                optimal: solution.optimal,
            }
        })
        .collect();

    assert_eq!(parallel, sequential);
    // Byte-identical through the JSON reporter as well.
    assert_eq!(to_json(&parallel), to_json(&sequential));
}

#[test]
fn depth_sweep_is_stable_across_runs() {
    let soc = d695();
    let depths = [64 * 1024, 96 * 1024, 128 * 1024, 192 * 1024];
    let first = depth_sweep(&soc, &config(), &depths).unwrap();
    let second = depth_sweep(&soc, &config(), &depths).unwrap();
    assert_eq!(first, second);
    assert_eq!(to_json(&first), to_json(&second));
}

#[test]
fn concurrent_lazy_table_sweep_matches_eager_sequential_on_a_scaled_soc() {
    // The sweeps share one LazyTimeTable across the rayon pool, so many
    // workers race on the same cells; the results must still be
    // bit-identical to a sequential evaluation on an eager table.
    use soctest_soc_model::synthetic::SyntheticSocSpec;
    let soc = SyntheticSocSpec::new("sweep_scaled", 300)
        .seed(300)
        .memory_fraction(0.3)
        .generate();
    let mut cfg = OptimizerConfig::new(TestCell::new(
        AteSpec::new(512, 7 * 1024 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    ));
    cfg.options.retest_contact_failures = true;
    let depths = [4 * 1024 * 1024, 5 * 1024 * 1024, 7 * 1024 * 1024];
    let parallel = depth_sweep(&soc, &cfg, &depths).unwrap();

    let table = TimeTable::build(&soc, 256);
    let sequential: Vec<SweepPoint> = depths
        .iter()
        .map(|&depth| {
            let mut point_cfg = cfg;
            point_cfg.test_cell.ate = point_cfg.test_cell.ate.with_depth(depth);
            let solution = optimize_with_table(soc.name(), &table, &point_cfg).unwrap();
            SweepPoint {
                parameter: AxisValue::DepthVectors(depth),
                max_sites: solution.max_sites,
                optimal: solution.optimal,
            }
        })
        .collect();
    assert_eq!(parallel, sequential);
    assert_eq!(to_json(&parallel), to_json(&sequential));
}
