//! Determinism proofs for the rayon-parallel sweeps: results must be
//! byte-identical to evaluating every sweep point sequentially, and stable
//! across repeated runs — at any thread count, under nested batch
//! parallelism, on the persistent work-stealing pool.

use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::engine::{Engine, OptimizeRequest, OptimizeResponse, SweepAxis};
use soctest_multisite::optimizer::optimize_with_table;
use soctest_multisite::problem::OptimizerConfig;
use soctest_multisite::report::to_json;
use soctest_multisite::sweep::{channel_sweep, depth_sweep, AxisValue, SweepPoint};
use soctest_soc_model::benchmarks::d695;
use soctest_tam::TimeTable;

fn config() -> OptimizerConfig {
    OptimizerConfig::new(TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    ))
}

#[test]
fn channel_sweep_matches_sequential_evaluation() {
    let soc = d695();
    let channels = [128usize, 160, 192, 224, 256, 320];
    let parallel = channel_sweep(&soc, &config(), &channels).unwrap();

    // The sequential path: the same per-point computation, one at a time.
    let table = TimeTable::build(&soc, channels.iter().max().unwrap() / 2);
    let sequential: Vec<SweepPoint> = channels
        .iter()
        .map(|&k| {
            let mut cfg = config();
            cfg.test_cell.ate = cfg.test_cell.ate.with_channels(k);
            let solution = optimize_with_table(soc.name(), &table, &cfg).unwrap();
            SweepPoint {
                parameter: AxisValue::Channels(k),
                max_sites: solution.max_sites,
                optimal: solution.optimal,
            }
        })
        .collect();

    assert_eq!(parallel, sequential);
    // Byte-identical through the JSON reporter as well.
    assert_eq!(to_json(&parallel), to_json(&sequential));
}

#[test]
fn depth_sweep_is_stable_across_runs() {
    let soc = d695();
    let depths = [64 * 1024, 96 * 1024, 128 * 1024, 192 * 1024];
    let first = depth_sweep(&soc, &config(), &depths).unwrap();
    let second = depth_sweep(&soc, &config(), &depths).unwrap();
    assert_eq!(first, second);
    assert_eq!(to_json(&first), to_json(&second));
}

#[test]
fn concurrent_lazy_table_sweep_matches_eager_sequential_on_a_scaled_soc() {
    // The sweeps share one LazyTimeTable across the rayon pool, so many
    // workers race on the same cells; the results must still be
    // bit-identical to a sequential evaluation on an eager table.
    use soctest_soc_model::synthetic::SyntheticSocSpec;
    let soc = SyntheticSocSpec::new("sweep_scaled", 300)
        .seed(300)
        .memory_fraction(0.3)
        .generate();
    let mut cfg = OptimizerConfig::new(TestCell::new(
        AteSpec::new(512, 7 * 1024 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    ));
    cfg.options.retest_contact_failures = true;
    let depths = [4 * 1024 * 1024, 5 * 1024 * 1024, 7 * 1024 * 1024];
    let parallel = depth_sweep(&soc, &cfg, &depths).unwrap();

    let table = TimeTable::build(&soc, 256);
    let sequential: Vec<SweepPoint> = depths
        .iter()
        .map(|&depth| {
            let mut point_cfg = cfg;
            point_cfg.test_cell.ate = point_cfg.test_cell.ate.with_depth(depth);
            let solution = optimize_with_table(soc.name(), &table, &point_cfg).unwrap();
            SweepPoint {
                parameter: AxisValue::DepthVectors(depth),
                max_sites: solution.max_sites,
                optimal: solution.optimal,
            }
        })
        .collect();
    assert_eq!(parallel, sequential);
    assert_eq!(to_json(&parallel), to_json(&sequential));
}

/// The mixed batch of the scheduler stress tests: every axis shape at
/// once, so a parallel `run_batch` exercises request-level fan-out nested
/// over point-level fan-out on one shared lazy table.
fn mixed_axis_batch(config: OptimizerConfig) -> Vec<OptimizeRequest> {
    vec![
        OptimizeRequest::new(config),
        OptimizeRequest::new(config)
            .with_sweep(SweepAxis::Channels(vec![128, 160, 192, 224, 256, 320])),
        OptimizeRequest::new(config).with_sweep(SweepAxis::DepthVectors(vec![
            64 * 1024,
            96 * 1024,
            128 * 1024,
            192 * 1024,
        ])),
        OptimizeRequest::new(config).with_sweep(SweepAxis::ContactYield {
            depths: vec![64 * 1024, 96 * 1024, 128 * 1024],
            contact_yields: vec![0.99, 0.999, 1.0],
        }),
        OptimizeRequest::new(config).with_sweep(SweepAxis::ManufacturingYield {
            max_sites: 8,
            manufacturing_yields: vec![1.0, 0.9, 0.7],
        }),
    ]
}

#[test]
fn mixed_axis_batch_is_deterministic_across_thread_counts_and_runs() {
    // The scheduler stress test: sequential == parallel == nested-parallel
    // across engine thread caps 1 (sequential), 2, and N (the full pool),
    // each repeated so a racy steal schedule would have runs to diverge
    // in. Every engine is fresh per run, so no warm table masks a
    // scheduling effect; every response must be bit-identical and
    // byte-identical through the JSON reporter.
    let soc = d695();
    let batch = mixed_axis_batch(config());

    let baseline: Vec<OptimizeResponse> = Engine::builder(&soc)
        .sequential()
        .build()
        .run_batch(&batch)
        .into_iter()
        .map(|result| result.expect("every stress request is feasible"))
        .collect();
    let baseline_json: Vec<String> = baseline.iter().map(to_json).collect();

    let pool_threads = rayon::current_num_threads();
    for cap in [1usize, 2, pool_threads.max(3)] {
        for run in 0..3 {
            let engine = Engine::builder(&soc).threads(cap).build();
            let responses: Vec<OptimizeResponse> = engine
                .run_batch(&batch)
                .into_iter()
                .map(|result| result.expect("every stress request is feasible"))
                .collect();
            assert_eq!(
                responses, baseline,
                "thread cap {cap}, run {run}: batch diverged from sequential"
            );
            let json: Vec<String> = responses.iter().map(to_json).collect();
            assert_eq!(
                json, baseline_json,
                "thread cap {cap}, run {run}: JSON rendering diverged"
            );
        }
    }
}

#[test]
fn one_engine_re_answers_identically_while_its_table_warms() {
    // Repeated runs on ONE engine: the shared lazy table accumulates
    // cells between runs, and the answers must not move.
    let soc = d695();
    let batch = mixed_axis_batch(config());
    let engine = Engine::new(&soc);
    let first = engine.run_batch(&batch);
    let cells_after_first = engine.cells_built();
    for _ in 0..2 {
        let again = engine.run_batch(&batch);
        assert_eq!(again.len(), first.len());
        for (a, b) in again.iter().zip(&first) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }
    // The re-runs were served from the warm cache, not recomputed tables.
    assert_eq!(engine.cells_built(), cells_after_first);
}
