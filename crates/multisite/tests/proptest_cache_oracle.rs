//! Cache-oracle property tests: the content-addressed result & row
//! cache must be invisible. Over random SOCs and requests, a cold
//! computation, a warm solution-cache hit, and a store-backed engine
//! must all answer bit-identically — and request identity must be
//! canonical: reordered or re-whitespaced JSON spellings of the same
//! request parse equal, canonicalise equal, and land on the same cache
//! entry.

use proptest::prelude::*;
use serde::Value;
use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::engine::{Engine, OptimizeResponse};
use soctest_multisite::service::{
    canonical_request, CacheOutcome, CancelToken, SessionPointMemo, SolutionCache,
};
use soctest_multisite::{OptimizeRequest, OptimizerConfig, SweepAxis};
use soctest_soc_model::{Module, Soc};
use soctest_tam::RowStore;
use std::sync::Arc;

prop_compose! {
    fn arb_module(index: usize)(
        patterns in 1u64..150,
        inputs in 1u32..60,
        outputs in 1u32..60,
        chains in proptest::collection::vec(1u64..200, 0..6),
    ) -> Module {
        Module::builder(format!("m{index}"))
            .patterns(patterns)
            .inputs(inputs)
            .outputs(outputs)
            .scan_chains(chains)
            .build()
    }
}

fn arb_soc() -> impl Strategy<Value = Soc> {
    (2usize..8).prop_flat_map(|n| {
        let modules: Vec<_> = (0..n).map(arb_module).collect();
        modules.prop_map(|ms| Soc::from_modules("prop_soc", ms))
    })
}

/// A request on a small test cell. The depth is generous enough that
/// every generated SOC fits at width 1, so most requests are feasible —
/// infeasible ones still flow through the oracle, compared as errors.
fn arb_request() -> impl Strategy<Value = OptimizeRequest> {
    (
        32usize..=128,
        (1u64 << 20)..(1u64 << 24),
        proptest::collection::vec(32usize..=128, 1..4),
        0u8..3,
    )
        .prop_map(|(channels, depth, sweep_channels, which)| {
            let cell = TestCell::new(
                AteSpec::new(channels, depth, 5.0e6),
                ProbeStation::paper_probe_station(),
            );
            let request = OptimizeRequest::new(OptimizerConfig::new(cell));
            match which {
                0 => request,
                1 => request.with_sweep(SweepAxis::Channels(sweep_channels)),
                _ => request.with_sweep(SweepAxis::DepthVectors(vec![depth, depth * 2])),
            }
        })
}

/// Recursively rotates the field order of every JSON object while
/// leaving array order (which is semantic) untouched: a different
/// spelling of the same value.
fn rotate_fields(value: Value, rotate: usize) -> Value {
    match value {
        Value::Object(fields) => {
            let mut fields: Vec<(String, Value)> = fields
                .into_iter()
                .map(|(key, value)| (key, rotate_fields(value, rotate)))
                .collect();
            if !fields.is_empty() {
                let len = fields.len();
                fields.rotate_left(rotate % len);
            }
            Value::Object(fields)
        }
        Value::Array(items) => Value::Array(
            items
                .into_iter()
                .map(|item| rotate_fields(item, rotate))
                .collect(),
        ),
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cache oracle: whatever path serves a request — cold engine,
    /// warm solution cache, or a store-backed engine replaying rows —
    /// the answer is bit-identical (and errors match exactly too).
    #[test]
    fn cold_warm_and_store_backed_answers_are_bit_identical(
        soc in arb_soc(),
        request in arb_request(),
    ) {
        let cold = Engine::new(&soc).run(&request);

        // Warm: the same request twice through a solution cache. The
        // first call computes, the second must be an exact hit carrying
        // the identical response; a failed request is never cached, so
        // its error must reproduce exactly instead.
        let cache = SolutionCache::new(64, 16 * 1024 * 1024);
        let token = CancelToken::new();
        let engine = Engine::new(&soc);
        let first = cache.run_coalesced(1, &request, &token, || engine.run(&request));
        match (&cold, &first) {
            (Ok(response), Ok((outcome, computed))) => {
                prop_assert_eq!(*outcome, CacheOutcome::Computed);
                prop_assert_eq!(computed, response);
                let (outcome, cached) = cache
                    .run_coalesced(1, &request, &token, || {
                        panic!("a warm hit must not recompute")
                    })
                    .expect("a cached success cannot fail");
                prop_assert_eq!(outcome, CacheOutcome::Hit);
                prop_assert_eq!(&cached, response);
            }
            (Err(cold_err), Err(warm_err)) => prop_assert_eq!(cold_err, warm_err),
            (cold, warm) => prop_assert!(
                false,
                "cold path {:?} and cached path {:?} disagree on feasibility",
                cold,
                warm
            ),
        }

        // Store-backed: one engine warms a row store, then a brand-new
        // engine on the same store must answer identically while
        // computing zero fresh cells.
        let store = Arc::new(RowStore::new());
        let warm_run = Engine::builder(&soc)
            .row_store(Arc::clone(&store))
            .build()
            .run(&request);
        prop_assert_eq!(&warm_run, &cold);
        let computed_before = store.stats().cells_computed;
        let replay = Engine::builder(&soc)
            .row_store(Arc::clone(&store))
            .build()
            .run(&request);
        prop_assert_eq!(&replay, &cold);
        prop_assert_eq!(
            store.stats().cells_computed,
            computed_before,
            "a store-backed replay rebuilt rows"
        );
    }

    /// Sweep-point reuse is invisible: a memo-backed engine answers a
    /// channel sweep bit-identically to a bare one, and afterwards a
    /// *plain* request for any swept count is a full cache hit carrying
    /// exactly the response a cold engine would compute.
    #[test]
    fn sweep_points_pre_answer_plain_requests_bit_identically(
        soc in arb_soc(),
        channels in 32usize..=128,
        depth in (1u64 << 20)..(1u64 << 24),
        sweep_channels in proptest::collection::vec(32usize..=128, 1..4),
    ) {
        let cell = TestCell::new(
            AteSpec::new(channels, depth, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        let base = OptimizerConfig::new(cell);
        let sweep = OptimizeRequest::new(base)
            .with_sweep(SweepAxis::Channels(sweep_channels.clone()));
        let bare = Engine::new(&soc).run(&sweep);

        let cache = Arc::new(SolutionCache::new(64, 16 * 1024 * 1024));
        let memo = Arc::new(SessionPointMemo::new(Arc::clone(&cache), 7));
        let memoised = Engine::builder(&soc).point_memo(memo).build().run(&sweep);
        prop_assert_eq!(&memoised, &bare, "the memo changed the sweep's answer");

        // A successful sweep published every point under its plain
        // effective-config key: each swept count must now be a Hit, and
        // the served response must equal a cold recomputation.
        if bare.is_ok() {
            for &count in &sweep_channels {
                let mut cfg = base;
                cfg.test_cell.ate = cfg.test_cell.ate.with_channels(count);
                let plain = OptimizeRequest::new(cfg);
                let expected = Engine::new(&soc)
                    .run(&plain)
                    .expect("every point of a successful sweep is feasible");
                let (outcome, served) = cache
                    .run_coalesced(7, &plain, &CancelToken::new(), || {
                        panic!("a swept point must answer the plain request")
                    })
                    .expect("a cached point cannot fail");
                prop_assert_eq!(outcome, CacheOutcome::Hit);
                prop_assert_eq!(served, expected);
            }
        }
    }

    /// Canonicalisation: every spelling of the same request — object
    /// fields rotated at every nesting level, compact or pretty
    /// whitespace — parses equal, canonicalises to the same key, and
    /// hits the cache entry inserted under the original spelling.
    #[test]
    fn reordered_and_reformatted_spellings_share_one_cache_entry(
        request in arb_request(),
        rotate in 1usize..5,
    ) {
        let rendered = serde_json::to_string(&request).expect("requests serialise");
        let parse_value = || -> Value {
            serde_json::from_str(&rendered).expect("rendered requests reparse")
        };
        let shuffled =
            serde_json::to_string(&rotate_fields(parse_value(), rotate)).expect("values serialise");
        let pretty = serde_json::to_string_pretty(&rotate_fields(parse_value(), rotate))
            .expect("values serialise");

        let cache = SolutionCache::new(8, 1 << 20);
        let token = CancelToken::new();
        cache
            .run_coalesced(9, &request, &token, || {
                Ok(OptimizeResponse::Curves(Vec::new()))
            })
            .expect("the marker response always succeeds");

        for spelling in [&shuffled, &pretty] {
            let reparsed: OptimizeRequest =
                serde_json::from_str(spelling).expect("reordered spellings still parse");
            prop_assert_eq!(&reparsed, &request);
            prop_assert_eq!(canonical_request(&reparsed), canonical_request(&request));
            let (outcome, _) = cache
                .run_coalesced(9, &reparsed, &token, || {
                    panic!("an equal canonical key must hit the cache")
                })
                .expect("a cached success cannot fail");
            prop_assert_eq!(outcome, CacheOutcome::Hit);
        }
    }
}
