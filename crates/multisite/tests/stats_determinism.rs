//! Observability-is-free property tests: the `RequestTrace` seam must
//! never perturb what it observes. Over random SOCs and requests,
//! traced and untraced runs must answer bit-identically (tracing only
//! reads epoch counters, it never influences the optimizer), and the
//! per-request `StatsEpoch` deltas must account exactly: summed across
//! a random sequential batch they equal the engine-lifetime totals,
//! even across table regrows.

use proptest::prelude::*;
use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::engine::Engine;
use soctest_multisite::{OptimizeRequest, OptimizerConfig, RequestTrace, SweepAxis};
use soctest_soc_model::{Module, Soc};

prop_compose! {
    fn arb_module(index: usize)(
        patterns in 1u64..150,
        inputs in 1u32..60,
        outputs in 1u32..60,
        chains in proptest::collection::vec(1u64..200, 0..6),
    ) -> Module {
        Module::builder(format!("m{index}"))
            .patterns(patterns)
            .inputs(inputs)
            .outputs(outputs)
            .scan_chains(chains)
            .build()
    }
}

fn arb_soc() -> impl Strategy<Value = Soc> {
    (2usize..8).prop_flat_map(|n| {
        let modules: Vec<_> = (0..n).map(arb_module).collect();
        modules.prop_map(|ms| Soc::from_modules("prop_soc", ms))
    })
}

/// A request on a small test cell; sweeping variants can demand wider
/// tables than the plain one, forcing mid-sequence regrows.
fn arb_request() -> impl Strategy<Value = OptimizeRequest> {
    (
        32usize..=128,
        (1u64 << 20)..(1u64 << 24),
        proptest::collection::vec(32usize..=256, 1..4),
        0u8..3,
    )
        .prop_map(|(channels, depth, sweep_channels, which)| {
            let cell = TestCell::new(
                AteSpec::new(channels, depth, 5.0e6),
                ProbeStation::paper_probe_station(),
            );
            let request = OptimizeRequest::new(OptimizerConfig::new(cell));
            match which {
                0 => request,
                1 => request.with_sweep(SweepAxis::Channels(sweep_channels)),
                _ => request.with_sweep(SweepAxis::DepthVectors(vec![depth, depth * 2])),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tracing is invisible: a traced run answers bit-identically to an
    /// untraced run of the same request on an identically-seeded
    /// engine — successes serialise to the same JSON bytes, failures
    /// compare equal — so the wire `stats` flag can never change the
    /// `solution`/`curves` payload.
    #[test]
    fn traced_runs_answer_bit_identically(soc in arb_soc(), request in arb_request()) {
        let untraced = Engine::new(&soc).run(&request);
        let (traced, trace) = Engine::new(&soc).run_traced(&request);
        prop_assert_eq!(&untraced, &traced);
        if let (Ok(plain), Ok(observed)) = (&untraced, &traced) {
            prop_assert_eq!(
                serde_json::to_string(plain).expect("responses serialise"),
                serde_json::to_string(observed).expect("responses serialise")
            );
        }
        prop_assert_eq!(trace.requests, 1);
        // The trace's own invariant: the total is the sum of its parts.
        prop_assert_eq!(
            trace.table.cells_built(),
            trace.table.cells_computed + trace.table.cells_from_store + trace.table.cells_inherited
        );
    }

    /// Sequential per-request `StatsEpoch` deltas sum to the
    /// engine-lifetime totals — nothing double-counted, nothing lost —
    /// including across table regrows (a regrow's eagerly-inherited
    /// cells surface as the final table's `cells_inherited`, exactly
    /// replacing the predecessor's materialised counters).
    #[test]
    fn per_request_deltas_sum_to_lifetime_totals(
        soc in arb_soc(),
        requests in proptest::collection::vec(arb_request(), 1..4),
    ) {
        let engine = Engine::new(&soc);
        let mut merged = RequestTrace::default();
        for request in &requests {
            let (_, trace) = engine.run_traced(request);
            merged = merged.merge(&trace);
        }
        prop_assert_eq!(merged.requests, requests.len() as u64);
        let lifetime = engine.stats();
        prop_assert_eq!(merged.table.cells_built(), lifetime.cells_built as u64);
        // Batch tracing covers the same work in one delta.
        let batch_engine = Engine::new(&soc);
        let (batch_responses, batch_trace) = batch_engine.run_batch_traced(&requests);
        prop_assert_eq!(batch_responses.len(), requests.len());
        prop_assert_eq!(batch_trace.requests, requests.len() as u64);
        prop_assert_eq!(
            batch_trace.table.cells_built(),
            batch_engine.stats().cells_built as u64
        );
    }
}
