//! On-disk corruption suite for the `solutions.v1` solution-cache
//! format, the sibling of the row-store suite in
//! `crates/tam/tests/row_store_corruption.rs`: a damaged cache file
//! must always be a *clean miss* — `load` returns a typed
//! [`StoreError`] and leaves the cache exactly as it was — or, for
//! damage the format provably cannot detect, load only bit-correct
//! responses. Covers truncation at every byte, a bit flip at every
//! byte, version bumps with forged checksums, magic damage, trailing
//! garbage, and a missing file.

use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::engine::{Engine, OptimizeRequest, OptimizeResponse, PointMemo, SweepAxis};
use soctest_multisite::problem::OptimizerConfig;
use soctest_multisite::service::{CancelToken, SessionPointMemo, SolutionCache};
use soctest_soc_model::benchmarks::d695;
use soctest_tam::StoreError;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The fake SOC content hash every truth entry is keyed under.
const SOC_KEY: u64 = 42;

/// Ground truth: every `(request, response)` the warm cache holds.
type Truth = Vec<(OptimizeRequest, OptimizeResponse)>;

/// A scratch directory unique to this test binary run.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "soctest-solutions-corruption-{}-{tag}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn plain_request(channels: usize) -> OptimizeRequest {
    let cell = TestCell::new(
        AteSpec::new(channels, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    OptimizeRequest::new(OptimizerConfig::new(cell))
}

/// Warms a cache with real d695 responses — one plain solution, one
/// sweep's curves through the whole-request index, plus one entry in
/// the point index — and returns the cache and the ground truth.
fn warm_cache() -> (Arc<SolutionCache>, Truth) {
    let engine = Engine::new(&d695());
    let cache = Arc::new(SolutionCache::new(64, u64::MAX));
    let token = CancelToken::new();
    let mut truth = Truth::new();
    for request in [
        plain_request(64),
        plain_request(64).with_sweep(SweepAxis::Channels(vec![48, 64])),
    ] {
        let (_, response) = cache
            .run_coalesced(SOC_KEY, &request, &token, || engine.run(&request))
            .expect("warm request succeeds");
        truth.push((request, response));
    }
    let memo = SessionPointMemo::new(Arc::clone(&cache), SOC_KEY);
    let point = plain_request(48);
    let response = engine.run(&point).expect("point request succeeds");
    memo.put(&point, &response);
    truth.push((point, response));
    (cache, truth)
}

/// The corruption oracle: loading `bytes` (written to a scratch file)
/// into a fresh cache must either fail cleanly — leaving the cache
/// empty — or load only bit-correct responses for every known request.
/// Both ways, it must not panic and must not serve a wrong response.
fn assert_clean_miss_or_clean_data(path: &Path, bytes: &[u8], truth: &Truth) {
    fs::write(path, bytes).expect("write corrupted file");
    let cache = Arc::new(SolutionCache::new(64, u64::MAX));
    match cache.load(path) {
        Err(_) => {
            let stats = cache.stats();
            assert!(
                cache.is_empty(),
                "a rejected file must leave the cache untouched"
            );
            assert_eq!(
                (stats.point_entries, stats.bytes, stats.point_bytes),
                (0, 0, 0)
            );
        }
        Ok(_) => {
            // `SessionPointMemo` probes both indexes, so it observes
            // whatever the file managed to smuggle in.
            let memo = SessionPointMemo::new(Arc::clone(&cache), SOC_KEY);
            for (request, expected) in truth {
                if let Some(got) = memo.get(request) {
                    assert_eq!(&got, expected, "corrupted file served a wrong response");
                }
            }
        }
    }
}

#[test]
fn truncation_at_every_byte_is_a_clean_miss() {
    let dir = scratch_dir("truncate");
    let full = dir.join("solutions.v1");
    let (cache, truth) = warm_cache();
    cache.save(&full).expect("save the warm cache");
    let bytes = fs::read(&full).expect("read the saved cache");
    assert!(bytes.len() > 100, "the warm cache should be non-trivial");

    let path = dir.join("truncated.solutions.v1");
    for len in 0..bytes.len() {
        assert_clean_miss_or_clean_data(&path, &bytes[..len], &truth);
    }
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}

#[test]
fn a_bit_flip_at_every_byte_never_serves_a_wrong_response() {
    let dir = scratch_dir("bitflip");
    let full = dir.join("solutions.v1");
    let (cache, truth) = warm_cache();
    cache.save(&full).expect("save the warm cache");
    let bytes = fs::read(&full).expect("read the saved cache");

    let path = dir.join("flipped.solutions.v1");
    for position in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[position] ^= 1 << (position % 8);
        assert_clean_miss_or_clean_data(&path, &flipped, &truth);
    }
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}

#[test]
fn version_bumps_and_magic_damage_are_rejected_even_with_a_valid_checksum() {
    let dir = scratch_dir("header");
    let full = dir.join("solutions.v1");
    let (cache, truth) = warm_cache();
    cache.save(&full).expect("save the warm cache");
    let bytes = fs::read(&full).expect("read the saved cache");
    let trailer_at = bytes.len() - 8;

    // A future format version with a *recomputed* checksum: the reader
    // must reject it on the version byte alone, not by luck of the
    // checksum.
    let mut bumped = bytes.clone();
    bumped[7] = b'2';
    let checksum = refnv(&bumped[..trailer_at]);
    bumped[trailer_at..].copy_from_slice(&checksum.to_le_bytes());
    let path = dir.join("bumped.solutions.v1");
    fs::write(&path, &bumped).expect("write bumped file");
    match SolutionCache::new(64, u64::MAX).load(&path) {
        Err(StoreError::Corrupt(why)) => {
            assert!(
                why.contains("version"),
                "expected a version rejection, got: {why}"
            )
        }
        other => panic!("a bumped version must be rejected, got {other:?}"),
    }

    // Damaged magic, checksum likewise recomputed.
    let mut unmagic = bytes.clone();
    unmagic[0] = b'X';
    let checksum = refnv(&unmagic[..trailer_at]);
    unmagic[trailer_at..].copy_from_slice(&checksum.to_le_bytes());
    assert_clean_miss_or_clean_data(&dir.join("unmagic.solutions.v1"), &unmagic, &truth);
    assert!(matches!(
        SolutionCache::new(64, u64::MAX).load(&dir.join("unmagic.solutions.v1")),
        Err(StoreError::Corrupt(_))
    ));

    // Trailing garbage after a byte-perfect file.
    let mut trailing = bytes.clone();
    trailing.extend_from_slice(b"junk after the trailer");
    assert_clean_miss_or_clean_data(&dir.join("trailing.solutions.v1"), &trailing, &truth);
    assert!(matches!(
        SolutionCache::new(64, u64::MAX).load(&dir.join("trailing.solutions.v1")),
        Err(StoreError::Corrupt(_))
    ));
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}

/// FNV-1a 64 — reimplemented here (it is two lines) so the test can
/// forge checksums without the crate exporting its hasher.
fn refnv(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn a_pristine_save_round_trips_every_entry() {
    let dir = scratch_dir("roundtrip");
    let path = dir.join("solutions.v1");
    let (cache, truth) = warm_cache();
    cache.save(&path).expect("save the warm cache");

    let reloaded = Arc::new(SolutionCache::new(64, u64::MAX));
    let merged = reloaded.load(&path).expect("a pristine file loads");
    assert_eq!(merged as usize, truth.len());
    let memo = SessionPointMemo::new(Arc::clone(&reloaded), SOC_KEY);
    for (request, expected) in &truth {
        assert_eq!(
            memo.get(request).as_ref(),
            Some(expected),
            "a persisted response must replay bit-identically"
        );
    }
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}

#[test]
fn missing_files_are_an_empty_cache_not_an_error() {
    let dir = scratch_dir("missing");
    let path = dir.join("never-written.solutions.v1");
    let cache = SolutionCache::new(64, u64::MAX);
    assert_eq!(cache.load_if_present(&path).expect("missing file is ok"), 0);
    assert!(matches!(cache.load(&path), Err(StoreError::Io(_))));
    assert!(cache.is_empty());
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}
