//! Regression tests for SOC validation at the engine boundary: degenerate
//! descriptions are rejected up front with typed issues instead of
//! producing nonsense architectures (or panics) deep in the optimizer.

use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::{Engine, OptimizeError, OptimizeRequest, OptimizerConfig};
use soctest_soc_model::validate::Severity;
use soctest_soc_model::{benchmarks, Module, Soc};

fn request() -> OptimizeRequest {
    let cell = TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    OptimizeRequest::new(OptimizerConfig::new(cell))
}

/// A module with patterns but no scan chains and no functional terminals:
/// there is nothing to apply the patterns through.
fn island_soc() -> Soc {
    let mut soc = Soc::new("island");
    soc.push_module(Module::builder("island").patterns(10).build());
    soc
}

#[test]
fn try_build_rejects_degenerate_socs_before_table_allocation() {
    let err = Engine::builder(&island_soc()).try_build().unwrap_err();
    match err {
        OptimizeError::InvalidSoc { issues } => {
            assert!(issues.iter().any(|issue| issue.severity == Severity::Error));
            assert!(issues
                .iter()
                .any(|issue| issue.message.contains("no scan chains")));
        }
        other => panic!("expected InvalidSoc, got {other}"),
    }
}

#[test]
fn infallible_build_answers_invalid_soc_on_every_request() {
    let engine = Engine::new(&island_soc());
    assert!(!engine.is_usable());
    let err = engine.run(&request()).unwrap_err();
    assert!(matches!(err, OptimizeError::InvalidSoc { .. }));
    // Batches answer the same typed error per request, not a panic.
    let results = engine.run_batch(&[request(), request()]);
    assert_eq!(results.len(), 2);
    for result in results {
        assert!(matches!(result, Err(OptimizeError::InvalidSoc { .. })));
    }
}

#[test]
fn empty_soc_is_invalid_up_front() {
    let engine = Engine::new(&Soc::new("empty"));
    let err = engine.run(&request()).unwrap_err();
    match err {
        OptimizeError::InvalidSoc { issues } => {
            assert!(issues
                .iter()
                .any(|issue| issue.message.contains("no modules")));
        }
        other => panic!("expected InvalidSoc, got {other}"),
    }
}

#[test]
fn zero_length_chain_is_a_warning_not_a_rejection() {
    let mut soc = Soc::new("weird");
    soc.push_module(
        Module::builder("m")
            .patterns(10)
            .inputs(2)
            .outputs(2)
            .scan_chains([0u64, 12])
            .build(),
    );
    let engine = Engine::builder(&soc).try_build().expect("usable SOC");
    assert!(engine.is_usable());
    assert_eq!(engine.validation_issues().len(), 1);
    assert_eq!(engine.validation_issues()[0].severity, Severity::Warning);
    let stats = engine.stats();
    assert!(stats.usable);
    assert_eq!(stats.validation_issues, 1);
    engine
        .run(&request())
        .expect("warnings don't block serving");
}

#[test]
fn clean_benchmarks_build_without_issues() {
    let engine = Engine::builder(&benchmarks::d695()).try_build().unwrap();
    assert!(engine.is_usable());
    assert!(engine.validation_issues().is_empty());
    let stats = engine.stats();
    assert!(stats.usable);
    assert_eq!(stats.validation_issues, 0);
    assert!(stats.table_memory_bytes > 0);
}
