//! Property tests of the `soc-serve` NDJSON wire protocol: random typed
//! frames survive a JSON round trip bit-exactly, and mangled frames —
//! unknown fields, injected duplicates, truncation at any byte — are
//! rejected rather than silently reinterpreted.

use proptest::collection::vec;
use proptest::prelude::*;
use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::service::{
    parse_client_frame, render_server_frame, CacheStats, ClientFrame, ConnectionStats, ErrorFrame,
    ErrorKind, OptimizeFrame, ServerFrame, ServerStats, SocSpec, TraceSummary,
};
use soctest_multisite::{OptimizeRequest, OptimizerConfig, SweepAxis};

prop_compose! {
    fn arb_id()(bytes in vec(97u8..=122u8, 1..12)) -> String {
        String::from_utf8(bytes).expect("lowercase ascii")
    }
}

prop_compose! {
    fn arb_soc_spec()(named in 0u8..2, name in arb_id()) -> SocSpec {
        if named == 0 {
            SocSpec::Named(name)
        } else {
            SocSpec::Inline(format!("soc {name}\n"))
        }
    }
}

prop_compose! {
    fn arb_sweep()(
        which in 0u8..5,
        channels in vec(1usize..2048, 1..5),
        depths in vec(1024u64..(1 << 22), 1..5),
        yields_millis in vec(1u64..1000, 1..4),
        max_sites in 1usize..32,
    ) -> SweepAxis {
        // Yields travel as f64 but are generated on a millis grid so the
        // JSON round trip is bit-exact by construction, like the real
        // client would send.
        let yields: Vec<f64> = yields_millis.iter().map(|&m| m as f64 / 1000.0).collect();
        match which {
            0 => SweepAxis::None,
            1 => SweepAxis::Channels(channels),
            2 => SweepAxis::DepthVectors(depths),
            3 => SweepAxis::ContactYield {
                depths,
                contact_yields: yields,
            },
            _ => SweepAxis::ManufacturingYield {
                max_sites,
                manufacturing_yields: yields,
            },
        }
    }
}

prop_compose! {
    fn arb_request()(
        channels in 8usize..2048,
        depth in 1024u64..(1 << 24),
        clock_mhz in 1u64..200,
        sweep in arb_sweep(),
    ) -> OptimizeRequest {
        let cell = TestCell::new(
            AteSpec::new(channels, depth, clock_mhz as f64 * 1.0e6),
            ProbeStation::paper_probe_station(),
        );
        OptimizeRequest::new(OptimizerConfig::new(cell)).with_sweep(sweep)
    }
}

prop_compose! {
    fn arb_client_frame()(
        which in 0u8..3,
        request_id in arb_id(),
        soc in arb_soc_spec(),
        request in arb_request(),
        deadline_ms in 0u64..100_000,
        with_deadline in 0u8..2,
        with_stats in 0u8..2,
    ) -> ClientFrame {
        match which {
            0 => ClientFrame::Optimize(OptimizeFrame {
                request_id,
                soc,
                request,
                deadline_ms: (with_deadline == 1).then_some(deadline_ms),
                stats: with_stats == 1,
            }),
            1 => ClientFrame::Cancel { request_id },
            _ => ClientFrame::Shutdown,
        }
    }
}

prop_compose! {
    fn arb_server_frame()(
        which in 0u8..3,
        request_id in arb_id(),
        anonymous in 0u8..2,
        kind_index in 0usize..9,
        message in arb_id(),
        counters in vec(0u64..10_000, 21),
        with_trace in 0u8..2,
        with_connection in 0u8..2,
    ) -> ServerFrame {
        let kinds = [
            ErrorKind::Protocol,
            ErrorKind::UnknownRequest,
            ErrorKind::InvalidSoc,
            ErrorKind::InvalidConfig,
            ErrorKind::Architecture,
            ErrorKind::Internal,
            ErrorKind::Cancelled,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Overloaded,
        ];
        match which {
            0 => ServerFrame::Error(ErrorFrame {
                request_id: (anonymous == 0).then_some(request_id),
                kind: kinds[kind_index],
                message,
            }),
            _ => ServerFrame::Bye(ServerStats {
                served: counters[0],
                errors: counters[1],
                internal_errors: counters[18],
                sessions_created: counters[2],
                session_hits: counters[3],
                session_misses: counters[4],
                evictions: counters[5],
                cache: CacheStats {
                    result_hits: counters[6],
                    result_misses: counters[7],
                    coalesced_waits: counters[8],
                    coalesced_served: counters[9],
                    result_bytes: counters[10],
                    cells_computed: counters[11],
                    store_cells_loaded: counters[12],
                    store_rows_saved: counters[13],
                },
                trace: (with_trace == 1).then_some(TraceSummary {
                    requests: counters[14],
                    cells_built: counters[15],
                    cells_inherited: counters[16],
                    store_cells_computed: counters[17],
                }),
                connection: (with_connection == 1).then_some(ConnectionStats {
                    id: counters[19],
                    requests: counters[20],
                }),
            }),
        }
    }
}

proptest! {
    #[test]
    fn client_frames_round_trip(frame in arb_client_frame()) {
        let line = serde_json::to_string(&frame).expect("client frames serialise");
        prop_assert!(!line.contains('\n'), "a frame must be one line: {line}");
        let back = parse_client_frame(&line)
            .map_err(|err| TestCaseError::fail(format!("rejected own frame: {err}")))?;
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn server_frames_round_trip(frame in arb_server_frame()) {
        let line = render_server_frame(&frame);
        prop_assert!(!line.contains('\n'), "a frame must be one line: {line}");
        let back: ServerFrame = serde_json::from_str(&line)
            .map_err(|err| TestCaseError::fail(format!("rejected own frame: {err}")))?;
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn truncated_frames_are_rejected_at_every_byte(
        frame in arb_client_frame(),
        cut_permille in 0u32..1000,
    ) {
        let line = serde_json::to_string(&frame).expect("client frames serialise");
        // Every strict ASCII-safe prefix must fail to parse — a dropped
        // TCP segment or a half-written pipe must never yield a frame.
        let cut = (line.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let prefix: String = line.chars().take(cut.min(line.len().saturating_sub(1))).collect();
        prop_assert!(
            parse_client_frame(&prefix).is_err(),
            "accepted truncated frame: {prefix:?}"
        );
    }

    #[test]
    fn unknown_fields_are_rejected(
        request_id in arb_id(),
        soc in arb_soc_spec(),
        request in arb_request(),
        bogus in arb_id(),
    ) {
        let frame = ClientFrame::Optimize(OptimizeFrame {
            request_id,
            soc,
            request,
            deadline_ms: None,
            stats: false,
        });
        let line = serde_json::to_string(&frame).expect("client frames serialise");
        // Splice an unexpected field into the Optimize body. `bogus` is
        // lowercase-alpha, so it never collides with a real field name
        // spelled with an underscore — force a distinct name regardless.
        let field = format!("zz_{bogus}");
        let mangled = line.replacen(
            "{\"Optimize\":{",
            &format!("{{\"Optimize\":{{\"{field}\":1,"),
            1,
        );
        prop_assert!(
            parse_client_frame(&mangled).is_err(),
            "accepted unknown field {field}: {mangled}"
        );
    }

    #[test]
    fn duplicate_fields_are_rejected(request_id in arb_id()) {
        let line = format!(
            "{{\"Cancel\":{{\"request_id\":\"{request_id}\",\"request_id\":\"{request_id}\"}}}}"
        );
        prop_assert!(parse_client_frame(&line).is_err(), "accepted duplicate field: {line}");
    }
}
