//! Equivalence proofs for the session-oriented engine: `Engine::run` /
//! `Engine::run_batch` must be bit-identical to the legacy free-function
//! path — `optimize_with_table` over a per-call `LazyTimeTable` — on the
//! PNX8550 stand-in and a synthetic SOC, including a heterogeneous
//! mixed-axis batch, and the free functions (now shims over a one-shot
//! engine) must reproduce the same results.

use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::engine::{Engine, OptimizeRequest, SweepAxis};
use soctest_multisite::optimizer::{optimize, optimize_with_table};
use soctest_multisite::problem::OptimizerConfig;
use soctest_multisite::report::to_json;
use soctest_multisite::sweep::{
    abort_on_fail_sweep, channel_sweep, contact_yield_sweep, depth_sweep, AxisValue, SweepPoint,
};
use soctest_multisite::MultiSiteSolution;
use soctest_soc_model::synthetic::{pnx8550_like, SyntheticSocSpec};
use soctest_soc_model::Soc;
use soctest_tam::{max_tam_width, LazyTimeTable};

fn small_config() -> OptimizerConfig {
    OptimizerConfig::new(TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    ))
}

fn synthetic_soc() -> Soc {
    SyntheticSocSpec::new("engine_equiv", 150)
        .seed(150)
        .memory_fraction(0.3)
        .generate()
}

/// The pre-engine `optimize` path: a fresh per-call table, no engine.
fn legacy_optimize(soc: &Soc, config: &OptimizerConfig) -> MultiSiteSolution {
    let table = LazyTimeTable::new(soc, max_tam_width(config.test_cell.ate.channels));
    optimize_with_table(soc.name(), &table, config).expect("feasible")
}

/// The pre-engine channel-sweep path: one table at the widest count, one
/// sequential `optimize_with_table` per point.
fn legacy_channel_sweep(
    soc: &Soc,
    config: &OptimizerConfig,
    channel_counts: &[usize],
) -> Vec<SweepPoint> {
    let widest = channel_counts.iter().copied().max().unwrap();
    let table = LazyTimeTable::new(soc, max_tam_width(widest));
    channel_counts
        .iter()
        .map(|&channels| {
            let mut cfg = *config;
            cfg.test_cell.ate = cfg.test_cell.ate.with_channels(channels);
            let solution = optimize_with_table(soc.name(), &table, &cfg).expect("feasible");
            SweepPoint {
                parameter: AxisValue::Channels(channels),
                max_sites: solution.max_sites,
                optimal: solution.optimal,
            }
        })
        .collect()
}

#[test]
fn engine_matches_the_legacy_optimize_path_on_the_pnx_stand_in() {
    let soc = pnx8550_like();
    let config = OptimizerConfig::paper_section7();
    let engine = Engine::new(&soc);
    let via_engine = engine
        .run(&OptimizeRequest::new(config))
        .unwrap()
        .into_solution()
        .unwrap();
    let legacy = legacy_optimize(&soc, &config);
    assert_eq!(via_engine, legacy);
    assert_eq!(to_json(&via_engine), to_json(&legacy));
    // The shim agrees too.
    assert_eq!(optimize(&soc, &config).unwrap(), legacy);
}

#[test]
fn engine_matches_the_legacy_optimize_path_on_a_synthetic_soc() {
    let soc = synthetic_soc();
    let config = OptimizerConfig::new(TestCell::new(
        AteSpec::new(512, 4 * 1024 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    ));
    let via_engine = Engine::new(&soc)
        .run(&OptimizeRequest::new(config))
        .unwrap()
        .into_solution()
        .unwrap();
    assert_eq!(via_engine, legacy_optimize(&soc, &config));
}

#[test]
fn engine_channel_sweep_is_bit_identical_to_the_legacy_path() {
    let soc = synthetic_soc();
    let config = OptimizerConfig::new(TestCell::new(
        AteSpec::new(512, 4 * 1024 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    ));
    let counts = [256usize, 384, 512, 640];
    let curves = Engine::new(&soc)
        .run(&OptimizeRequest::new(config).with_sweep(SweepAxis::Channels(counts.to_vec())))
        .unwrap()
        .into_curves()
        .unwrap();
    let legacy = legacy_channel_sweep(&soc, &config, &counts);
    assert_eq!(curves[0].points, legacy);
    assert_eq!(to_json(&curves[0].points), to_json(&legacy));
    // The free-function shim reproduces the same points.
    assert_eq!(channel_sweep(&soc, &config, &counts).unwrap(), legacy);
}

#[test]
fn mixed_axis_batch_matches_individual_runs_and_the_free_functions() {
    let soc = pnx8550_like();
    let config = OptimizerConfig::paper_section7();
    let channels: Vec<usize> = (0..=4).map(|i| 512 + 128 * i).collect();
    let depths: Vec<u64> = (5..=9).map(|m| m * 1024 * 1024).collect();
    let contact_yields = [0.999, 1.0];
    let manufacturing_yields = [1.0, 0.8];

    let batch = [
        OptimizeRequest::new(config),
        OptimizeRequest::new(config).with_sweep(SweepAxis::Channels(channels.clone())),
        OptimizeRequest::new(config).with_sweep(SweepAxis::DepthVectors(depths.clone())),
        OptimizeRequest::new(config).with_sweep(SweepAxis::ContactYield {
            depths: depths.clone(),
            contact_yields: contact_yields.to_vec(),
        }),
        OptimizeRequest::new(config).with_sweep(SweepAxis::ManufacturingYield {
            max_sites: 8,
            manufacturing_yields: manufacturing_yields.to_vec(),
        }),
    ];

    // One engine, one shared table, all five figure shapes at once.
    let engine = Engine::new(&soc);
    let batched: Vec<_> = engine
        .run_batch(&batch)
        .into_iter()
        .map(|result| result.expect("every batch request is feasible"))
        .collect();

    // Batched answers equal individually-run answers on a fresh engine
    // (table sharing and batch order do not change any result) ...
    for (request, response) in batch.iter().zip(&batched) {
        let fresh = Engine::new(&soc).run(request).unwrap();
        assert_eq!(&fresh, response);
    }

    // ... and equal the legacy free functions, field for field.
    assert_eq!(
        batched[0].solution().unwrap(),
        &optimize(&soc, &config).unwrap()
    );
    assert_eq!(
        batched[1].curves().unwrap()[0].points,
        channel_sweep(&soc, &config, &channels).unwrap()
    );
    assert_eq!(
        batched[2].curves().unwrap()[0].points,
        depth_sweep(&soc, &config, &depths).unwrap()
    );
    assert_eq!(
        batched[3].curves().unwrap(),
        contact_yield_sweep(&soc, &config, &depths, &contact_yields).unwrap()
    );
    assert_eq!(
        batched[4].curves().unwrap(),
        abort_on_fail_sweep(&soc, &config, 8, &manufacturing_yields).unwrap()
    );
}

#[test]
fn nested_parallel_mixed_batch_is_identical_at_thread_caps_one_two_and_n() {
    // The work-stealing pool runs mixed batches with request-level AND
    // point-level parallelism; this pins scheduler determinism on a
    // synthetic SOC big enough for real stealing: sequential ==
    // thread-cap 2 == full pool, repeated, and equal to the free
    // functions' answers point for point.
    let soc = synthetic_soc();
    let config = OptimizerConfig::new(TestCell::new(
        AteSpec::new(512, 4 * 1024 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    ));
    let channels = vec![256usize, 384, 512, 640];
    let depths = vec![3 * 1024 * 1024u64, 4 * 1024 * 1024, 6 * 1024 * 1024];
    let batch = [
        OptimizeRequest::new(config),
        OptimizeRequest::new(config).with_sweep(SweepAxis::Channels(channels.clone())),
        OptimizeRequest::new(config).with_sweep(SweepAxis::DepthVectors(depths.clone())),
        OptimizeRequest::new(config).with_sweep(SweepAxis::ContactYield {
            depths: depths.clone(),
            contact_yields: vec![0.995, 1.0],
        }),
    ];

    let sequential: Vec<_> = Engine::builder(&soc)
        .sequential()
        .build()
        .run_batch(&batch)
        .into_iter()
        .map(|result| result.expect("feasible"))
        .collect();

    for cap in [2usize, rayon::current_num_threads().max(3)] {
        for run in 0..2 {
            let nested: Vec<_> = Engine::builder(&soc)
                .threads(cap)
                .build()
                .run_batch(&batch)
                .into_iter()
                .map(|result| result.expect("feasible"))
                .collect();
            assert_eq!(
                nested, sequential,
                "cap {cap} run {run}: nested-parallel batch diverged"
            );
            assert_eq!(
                to_json(&nested[0]),
                to_json(&sequential[0]),
                "cap {cap} run {run}: JSON diverged"
            );
        }
    }

    // The batch reproduces the legacy free functions bit for bit.
    assert_eq!(
        sequential[1].curves().unwrap()[0].points,
        channel_sweep(&soc, &config, &channels).unwrap()
    );
    assert_eq!(
        sequential[2].curves().unwrap()[0].points,
        depth_sweep(&soc, &config, &depths).unwrap()
    );
    assert_eq!(
        sequential[3].curves().unwrap(),
        contact_yield_sweep(&soc, &config, &depths, &[0.995, 1.0]).unwrap()
    );
}

#[test]
fn sequential_and_parallel_engines_agree_on_every_axis() {
    let soc = synthetic_soc();
    let config = small_config().with_test_cell(TestCell::new(
        AteSpec::new(512, 4 * 1024 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    ));
    let requests = [
        OptimizeRequest::new(config).with_sweep(SweepAxis::Channels(vec![384, 512])),
        OptimizeRequest::new(config).with_sweep(SweepAxis::DepthVectors(vec![
            3 * 1024 * 1024,
            4 * 1024 * 1024,
        ])),
        OptimizeRequest::new(config).with_sweep(SweepAxis::ContactYield {
            depths: vec![4 * 1024 * 1024],
            contact_yields: vec![0.99, 1.0],
        }),
    ];
    let parallel = Engine::new(&soc);
    let sequential = Engine::builder(&soc).sequential().build();
    for request in &requests {
        assert_eq!(
            parallel.run(request).unwrap(),
            sequential.run(request).unwrap()
        );
    }
}
