//! Cancellation and deadline semantics at the engine boundary, with the
//! property the streaming service leans on: an aborted run never
//! disturbs its siblings. The lazy time table is shared, warm state —
//! after any cancelled or deadline-expired request, subsequent answers
//! from the same engine must be identical to a fresh engine's.

use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::service::CancelToken;
use soctest_multisite::{Engine, OptimizeError, OptimizeRequest, OptimizerConfig, SweepAxis};
use soctest_soc_model::benchmarks;
use std::time::{Duration, Instant};

fn request() -> OptimizeRequest {
    let cell = TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    OptimizeRequest::new(OptimizerConfig::new(cell))
}

fn sweep_request() -> OptimizeRequest {
    request().with_sweep(SweepAxis::Channels(vec![128, 192, 256]))
}

#[test]
fn pre_cancelled_token_answers_cancelled_immediately() {
    let engine = Engine::new(&benchmarks::d695());
    let token = CancelToken::new();
    token.cancel();
    let err = engine.run_with_cancel(&request(), &token).unwrap_err();
    assert!(matches!(err, OptimizeError::Cancelled));
}

#[test]
fn expired_deadline_answers_deadline_exceeded() {
    let engine = Engine::new(&benchmarks::d695());
    let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
    let err = engine.run_with_cancel(&request(), &token).unwrap_err();
    assert!(matches!(err, OptimizeError::DeadlineExceeded));
}

#[test]
fn far_future_deadline_is_invisible_in_the_answer() {
    let engine = Engine::new(&benchmarks::d695());
    let plain = engine.run(&sweep_request()).expect("plain run succeeds");
    let token = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
    let timed = engine
        .run_with_cancel(&sweep_request(), &token)
        .expect("generous deadline succeeds");
    assert_eq!(plain, timed);
}

#[test]
fn aborted_runs_never_disturb_later_answers() {
    // Abort in every supported way against one engine, then check its
    // answers against an engine that never saw a cancellation. The first
    // abort lands on a *cold* table, so any partially materialised rows
    // from the aborted fill would show up here.
    let survivor = Engine::new(&benchmarks::d695());

    let cancelled = CancelToken::new();
    cancelled.cancel();
    assert!(survivor
        .run_with_cancel(&sweep_request(), &cancelled)
        .is_err());
    let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
    assert!(survivor.run_with_cancel(&request(), &expired).is_err());

    let fresh = Engine::new(&benchmarks::d695());
    assert_eq!(
        survivor.run(&sweep_request()).expect("survivor answers"),
        fresh.run(&sweep_request()).expect("fresh answers"),
    );

    // Batch answers (the parallel path) agree as well.
    let batch = [request(), sweep_request()];
    let survivor_batch: Vec<_> = survivor
        .run_batch(&batch)
        .into_iter()
        .map(|r| r.expect("survivor batch answers"))
        .collect();
    let fresh_batch: Vec<_> = fresh
        .run_batch(&batch)
        .into_iter()
        .map(|r| r.expect("fresh batch answers"))
        .collect();
    assert_eq!(survivor_batch, fresh_batch);
}

#[test]
fn mid_run_deadline_interrupts_a_cold_fill() {
    // p93791 with a cold table takes far longer than the budget below, so
    // the deadline must fire *during* the run — exercising the probe
    // inside the lazy table fill, not just the entry check.
    let engine = Engine::new(&benchmarks::p93791());
    let cell = TestCell::new(
        AteSpec::new(512, 4_000_000, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    let plain = OptimizeRequest::new(OptimizerConfig::new(cell));
    let big = plain.clone().with_sweep(SweepAxis::DepthVectors(
        (1_000_000..=3_500_000).step_by(20_000).collect(),
    ));
    let token = CancelToken::with_deadline(Instant::now() + Duration::from_millis(5));
    let err = engine.run_with_cancel(&big, &token).unwrap_err();
    assert!(matches!(err, OptimizeError::DeadlineExceeded), "got {err}");

    // The interrupted fill left the engine fully serviceable.
    let fresh = Engine::new(&benchmarks::p93791());
    let after = engine.run(&plain).expect("engine survives interruption");
    assert_eq!(after, fresh.run(&plain).expect("fresh answers"));
}
