use soctest_soc_model::benchmarks::{d695, p22810, p34392, p93791};
use soctest_tam::baseline::{lower_bound_channels, pack_with_table};
use soctest_tam::step1::design_with_table;
use soctest_tam::TimeTable;

fn main() {
    let cases: Vec<(soctest_soc_model::Soc, usize, Vec<u64>)> = vec![
        (d695(), 256, (0..11).map(|i| (48 + 8 * i) * 1024).collect()),
        (
            p22810(),
            512,
            (0..11).map(|i| (384 + 64 * i) * 1024).collect(),
        ),
        (
            p34392(),
            512,
            vec![
                768 * 1024,
                896 * 1024,
                1_000_000,
                1_128_000,
                1_256_000,
                1_384_000,
                1_512_000,
                1_640_000,
                1_768_000,
                1_896_000,
                2_000_000,
            ],
        ),
        (
            p93791(),
            512,
            vec![
                1_000_000, 1_256_000, 1_512_000, 1_768_000, 2_000_000, 2_256_000, 2_512_000,
                2_768_000, 3_000_000, 3_256_000, 3_512_000,
            ],
        ),
    ];
    for (soc, chans, depths) in cases {
        let table = TimeTable::build(&soc, chans / 2);
        println!("== {} ==", soc.name());
        for d in depths {
            let lb = lower_bound_channels(&table, d);
            let ours = design_with_table(&table, chans, d);
            let base = pack_with_table(&table, chans, d);
            println!(
                "  D={:>9}  LB={:?} ours={:?} base={:?}",
                d,
                lb,
                ours.as_ref().map(|a| a.total_channels()).ok(),
                base.as_ref().map(|b| b.architecture.total_channels()).ok()
            );
        }
    }
}
