//! On-disk corruption suite for the `rows.v1` row-store format: a
//! damaged cache file must always be a *clean miss* — `load` returns a
//! typed error (or, for damage the format provably cannot detect,
//! loads only bit-correct cells), never panics, and never serves a
//! wrong row. Covers truncation at every byte, a bit flip at every
//! byte, version bumps, magic damage, trailing garbage, and concurrent
//! writers racing one path.

use soctest_soc_model::benchmarks::d695;
use soctest_soc_model::ModuleId;
use soctest_tam::{LazyTimeTable, RowStore, StoreError};
use soctest_wrapper::row::ModuleShape;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Widths the warm store covers — small so the corruption sweeps stay
/// cheap while every module still contributes a multi-cell row.
const MAX_WIDTH: usize = 16;

/// Ground truth: every `(module shape, width)` time the warm store holds.
type Truth = Vec<(ModuleShape, Vec<u64>)>;

/// A scratch directory unique to this test binary run.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "soctest-rowstore-corruption-{}-{tag}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Warms a store with every d695 cell up to [`MAX_WIDTH`] (real kernel
/// times, via the store-backed lazy table) and returns the store plus
/// the ground-truth cells.
fn warm_store() -> (Arc<RowStore>, Truth) {
    let soc = d695();
    let store = Arc::new(RowStore::new());
    let table = LazyTimeTable::with_store(&soc, MAX_WIDTH, Arc::clone(&store));
    let truth = soc
        .modules()
        .iter()
        .enumerate()
        .map(|(index, module)| {
            let times = (1..=MAX_WIDTH)
                .map(|width| table.time(ModuleId(index), width))
                .collect();
            (ModuleShape::of(module), times)
        })
        .collect();
    (store, truth)
}

/// The corruption oracle: loading `bytes` (written to a scratch file)
/// into a fresh store must either fail cleanly — leaving the store
/// empty — or load only bit-correct cells for every known shape. Both
/// ways, it must not panic and must not serve a wrong time.
fn assert_clean_miss_or_clean_data(path: &Path, bytes: &[u8], truth: &Truth) {
    fs::write(path, bytes).expect("write corrupted file");
    let store = RowStore::new();
    match store.load(path) {
        Err(_) => {
            let stats = store.stats();
            assert_eq!(
                (stats.rows, stats.cells, stats.cells_loaded),
                (0, 0, 0),
                "a rejected file must leave the store untouched"
            );
        }
        Ok(_) => {
            for (shape, times) in truth {
                let row = store.row_for_shape(shape);
                for (width, expected) in (1..=MAX_WIDTH).zip(times) {
                    if let Some(time) = row.get(width) {
                        assert_eq!(
                            time, *expected,
                            "corrupted file served a wrong time for width {width}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn truncation_at_every_byte_is_a_clean_miss() {
    let dir = scratch_dir("truncate");
    let full = dir.join("rows.v1");
    let (store, truth) = warm_store();
    store.save(&full).expect("save the warm store");
    let bytes = fs::read(&full).expect("read the saved store");
    assert!(bytes.len() > 100, "the warm store should be non-trivial");

    let path = dir.join("truncated.rows.v1");
    for len in 0..bytes.len() {
        assert_clean_miss_or_clean_data(&path, &bytes[..len], &truth);
    }
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}

#[test]
fn a_bit_flip_at_every_byte_never_serves_a_wrong_row() {
    let dir = scratch_dir("bitflip");
    let full = dir.join("rows.v1");
    let (store, truth) = warm_store();
    store.save(&full).expect("save the warm store");
    let bytes = fs::read(&full).expect("read the saved store");

    let path = dir.join("flipped.rows.v1");
    for position in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[position] ^= 1 << (position % 8);
        assert_clean_miss_or_clean_data(&path, &flipped, &truth);
    }
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}

#[test]
fn version_bumps_and_magic_damage_are_rejected_even_with_a_valid_checksum() {
    let dir = scratch_dir("header");
    let full = dir.join("rows.v1");
    let (store, truth) = warm_store();
    store.save(&full).expect("save the warm store");
    let bytes = fs::read(&full).expect("read the saved store");

    // A future format version with a *recomputed* checksum: the reader
    // must reject it on the version byte alone, not by luck of the
    // checksum.
    let mut bumped = bytes.clone();
    bumped[7] = b'2';
    let trailer_at = bumped.len() - 8;
    let checksum = refnv(&bumped[..trailer_at]);
    bumped[trailer_at..].copy_from_slice(&checksum.to_le_bytes());
    let path = dir.join("bumped.rows.v1");
    fs::write(&path, &bumped).expect("write bumped file");
    let fresh = RowStore::new();
    match fresh.load(&path) {
        Err(StoreError::Corrupt(why)) => {
            assert!(
                why.contains("version"),
                "expected a version rejection, got: {why}"
            )
        }
        other => panic!("a bumped version must be rejected, got {other:?}"),
    }

    // Damaged magic, checksum likewise recomputed.
    let mut unmagic = bytes.clone();
    unmagic[0] = b'X';
    let checksum = refnv(&unmagic[..trailer_at]);
    unmagic[trailer_at..].copy_from_slice(&checksum.to_le_bytes());
    assert_clean_miss_or_clean_data(&dir.join("unmagic.rows.v1"), &unmagic, &truth);
    assert!(matches!(
        RowStore::new().load(&dir.join("unmagic.rows.v1")),
        Err(StoreError::Corrupt(_))
    ));

    // Trailing garbage after a byte-perfect file.
    let mut trailing = bytes.clone();
    trailing.extend_from_slice(b"junk after the trailer");
    assert_clean_miss_or_clean_data(&dir.join("trailing.rows.v1"), &trailing, &truth);
    assert!(matches!(
        RowStore::new().load(&dir.join("trailing.rows.v1")),
        Err(StoreError::Corrupt(_))
    ));
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}

/// FNV-1a 64 — reimplemented here (it is two lines) so the test can
/// forge checksums without the crate exporting its hasher.
fn refnv(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn concurrent_writers_always_leave_a_loadable_consistent_file() {
    let dir = scratch_dir("writers");
    let path = dir.join("rows.v1");

    // Two writers with disjoint row sets (distinct shapes) hammer the
    // same path; the atomic temp+rename save means a reader must always
    // observe one complete file — never a torn mix, never a parse
    // error, never a wrong time.
    let (store_a, truth_a) = warm_store();
    let store_b = Arc::new(RowStore::new());
    let mut truth_b = Truth::new();
    {
        use soctest_soc_model::Module;
        for patterns in 1..=8u64 {
            let module = Module::builder(format!("w{patterns}"))
                .patterns(patterns * 1000)
                .inputs(3)
                .outputs(4)
                .scan_chains(vec![50, 60])
                .build();
            let shape = ModuleShape::of(&module);
            let row = store_b.row_for_shape(&shape);
            let mut times = Vec::new();
            for width in 1..=MAX_WIDTH {
                let time = patterns * 1_000_000 + width as u64;
                row.insert(width, time);
                times.push(time);
            }
            truth_b.push((shape, times));
        }
    }
    let truth_union: Truth = truth_a.iter().chain(&truth_b).cloned().collect();

    store_a.save(&path).expect("seed the path");
    std::thread::scope(|scope| {
        for store in [&store_a, &store_b] {
            scope.spawn(|| {
                for _ in 0..30 {
                    store.save(&path).expect("concurrent save succeeds");
                }
            });
        }
        for _ in 0..60 {
            let reader = RowStore::new();
            let loaded = reader
                .load(&path)
                .expect("a concurrently rewritten file is always complete");
            assert!(loaded > 0, "every snapshot of the path holds rows");
            for (shape, times) in &truth_union {
                let row = reader.row_for_shape(shape);
                for (width, expected) in (1..=MAX_WIDTH).zip(times) {
                    if let Some(time) = row.get(width) {
                        assert_eq!(time, *expected, "torn write served a wrong time");
                    }
                }
            }
        }
    });
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}

#[test]
fn capped_saves_are_valid_files_under_the_bound_with_only_correct_cells() {
    let dir = scratch_dir("capped");
    let path = dir.join("rows.v1");
    let (store, truth) = warm_store();
    let full_rows = store.save(&path).expect("uncapped save");
    let full_bytes = fs::read(&path).expect("read full file").len() as u64;
    assert!(full_rows > 2, "the sweep needs rows to drop");

    // A cap at roughly half the file forces the save to shed its
    // coldest rows; what remains must be a complete, loadable envelope
    // under the bound that serves only bit-correct times.
    let cap = full_bytes / 2;
    let capped_rows = store.save_capped(&path, cap).expect("capped save succeeds");
    assert!(
        capped_rows < full_rows,
        "the cap must actually drop rows ({capped_rows} vs {full_rows})"
    );
    let written = fs::read(&path).expect("read capped file");
    assert!(
        written.len() as u64 <= cap,
        "the bound is strict: {} > {cap}",
        written.len()
    );
    let reader = RowStore::new();
    let loaded = reader.load(&path).expect("a capped file is a valid file");
    // `load` counts cells; every warm row carries all MAX_WIDTH widths.
    assert_eq!(loaded, capped_rows * MAX_WIDTH as u64);
    for (shape, times) in &truth {
        let row = reader.row_for_shape(shape);
        for (width, expected) in (1..=MAX_WIDTH).zip(times) {
            if let Some(time) = row.get(width) {
                assert_eq!(time, *expected, "a capped save served a wrong time");
            }
        }
    }
    // The resident store itself lost nothing — the cap is a file bound,
    // not an in-memory eviction.
    assert_eq!(store.save(&path).expect("uncapped re-save"), full_rows);

    // Even a cap below the envelope overhead degrades to a valid,
    // row-less file rather than an error or a torn write.
    let none = store
        .save_capped(&path, 40)
        .expect("tiny cap still writes a valid envelope");
    assert_eq!(none, 0);
    assert_eq!(RowStore::new().load(&path).expect("row-less file loads"), 0);
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}

#[test]
fn missing_files_are_an_empty_store_not_an_error() {
    let dir = scratch_dir("missing");
    let path = dir.join("never-written.rows.v1");
    let store = RowStore::new();
    assert_eq!(store.load_if_present(&path).expect("missing file is ok"), 0);
    assert!(matches!(store.load(&path), Err(StoreError::Io(_))));
    let stats = store.stats();
    assert_eq!((stats.rows, stats.cells), (0, 0));
    fs::remove_dir_all(&dir).expect("clean scratch dir");
}
