//! Determinism and bit-identity of the demand-driven table.
//!
//! The lazy table must serve *exactly* the numbers an eager
//! `TimeTable::build_sequential` holds — under sequential probing, under
//! rayon-parallel probing, and under the real concurrent access pattern of
//! `soctest_multisite::sweep` (covered from the multisite side by
//! `crates/multisite/tests/sweep_determinism.rs`; here the table itself is
//! hammered directly).

use rayon::prelude::*;
use soctest_soc_model::benchmarks::{d695, p22810};
use soctest_soc_model::synthetic::SyntheticSocSpec;
use soctest_soc_model::{ModuleId, Soc};
use soctest_tam::{LazyTimeTable, TimeTable};

fn scaled_soc() -> Soc {
    // Same family as the experiments crate's scaled tier.
    SyntheticSocSpec::new("lazy_equiv", 400)
        .seed(400)
        .memory_fraction(0.3)
        .generate()
}

fn assert_full_probe_equivalence(soc: &Soc, max_width: usize) {
    let lazy = LazyTimeTable::new(soc, max_width);
    let eager = TimeTable::build_sequential(soc, max_width);
    assert_eq!(lazy.num_modules(), eager.num_modules());
    assert_eq!(lazy.max_width(), eager.max_width());
    for m in 0..soc.num_modules() {
        let id = ModuleId(m);
        for width in 1..=max_width {
            assert_eq!(
                lazy.time(id, width),
                eager.time(id, width),
                "{} module {m} width {width}",
                soc.name()
            );
        }
    }
    assert_eq!(lazy.cells_built(), lazy.cells_total());
    assert!((lazy.build_ratio() - 1.0).abs() < 1e-12);
}

#[test]
fn every_cell_matches_the_sequential_build_on_d695() {
    assert_full_probe_equivalence(&d695(), 48);
}

#[test]
fn every_cell_matches_the_sequential_build_on_p22810() {
    assert_full_probe_equivalence(&p22810(), 64);
}

#[test]
fn every_cell_matches_the_sequential_build_on_a_scaled_soc() {
    assert_full_probe_equivalence(&scaled_soc(), 32);
}

#[test]
fn parallel_probing_is_deterministic_and_bit_identical() {
    let soc = p22810();
    let max_width = 48;
    let eager = TimeTable::build_sequential(&soc, max_width);

    // Probe the same cells from many rayon tasks at once, in a scattered
    // order that makes distinct threads race on the same cells.
    let lazy = LazyTimeTable::new(&soc, max_width);
    let probes: Vec<(usize, usize)> = (0..soc.num_modules())
        .flat_map(|m| (1..=max_width).map(move |w| (m, w)))
        .collect();
    let parallel_times: Vec<u64> = probes
        .par_iter()
        .map(|&(m, w)| lazy.time(ModuleId(m), w))
        .collect();
    // Every concurrent read must equal the eager sequential build.
    for (&(m, w), &t) in probes.iter().zip(&parallel_times) {
        assert_eq!(t, eager.time(ModuleId(m), w), "module {m} width {w}");
    }
    // Racing duplicate computations must not double-count cells.
    assert_eq!(lazy.cells_built(), lazy.cells_total());

    // A second, differently-ordered concurrent pass serves the cache and
    // returns the identical values.
    let scattered: Vec<(usize, usize)> = probes.iter().rev().copied().collect();
    let mut again: Vec<u64> = scattered
        .par_iter()
        .map(|&(m, w)| lazy.time(ModuleId(m), w))
        .collect();
    again.reverse();
    assert_eq!(again, parallel_times);
}

#[test]
fn optimizer_probes_only_a_sparse_subset() {
    use soctest_tam::step1::design_with_table;
    let soc = scaled_soc();
    let max_width = 256;
    let lazy = LazyTimeTable::new(&soc, max_width);
    let arch = design_with_table(&lazy, 2 * max_width, 7 * 1024 * 1024).expect("feasible");
    assert!(arch.total_channels() <= 2 * max_width);
    // Step 1 binary-searches min widths and probes group widths: a small
    // fraction of the full (module × width) grid.
    assert!(
        lazy.cells_built() * 4 < lazy.cells_total(),
        "step 1 materialised {}/{} cells — laziness lost",
        lazy.cells_built(),
        lazy.cells_total()
    );
}
