//! Equivalence proofs for the optimizer fast paths introduced with the row
//! kernel: the parallel `TimeTable::build`, the delta-scored Step 1
//! placement and the heap-based redistribution must all reproduce the
//! naive formulations bit for bit.

use proptest::prelude::*;
use soctest_soc_model::{Module, ModuleId, Soc};
use soctest_tam::architecture::{ChannelGroup, TestArchitecture};
use soctest_tam::redistribute::redistribute_extra_width;
use soctest_tam::step1::design_with_table;
use soctest_tam::TimeTable;

prop_compose! {
    fn arb_module(index: usize)(
        patterns in 1u64..150,
        inputs in 1u32..60,
        outputs in 1u32..60,
        chains in proptest::collection::vec(1u64..200, 0..8),
    ) -> Module {
        Module::builder(format!("m{index}"))
            .patterns(patterns)
            .inputs(inputs)
            .outputs(outputs)
            .scan_chains(chains)
            .build()
    }
}

fn arb_soc() -> impl Strategy<Value = Soc> {
    (2usize..14).prop_flat_map(|n| {
        let modules: Vec<_> = (0..n).map(arb_module).collect();
        modules.prop_map(|ms| Soc::from_modules("prop_soc", ms))
    })
}

fn feasible_depth(soc: &Soc) -> u64 {
    let table = TimeTable::build(soc, 1);
    let worst = (0..soc.num_modules())
        .map(|m| table.time(ModuleId(m), 1))
        .max()
        .unwrap_or(1);
    worst * 2
}

/// The original (pre-row-kernel) Step 1 capacity placement: clone the whole
/// group vector per alternative and re-sum every group's free memory. Kept
/// here as the reference the delta-scored production path must match.
mod reference {
    use super::*;

    fn total_free_memory(groups: &[ChannelGroup], depth: u64) -> u64 {
        groups
            .iter()
            .map(|g| g.free_cycles(depth) * g.channels() as u64)
            .sum()
    }

    fn try_place_in_existing_group(
        table: &TimeTable,
        groups: &mut [ChannelGroup],
        id: ModuleId,
        depth: u64,
    ) -> bool {
        let mut best: Option<(usize, u64)> = None;
        for (g_idx, group) in groups.iter().enumerate() {
            let new_fill = group.fill_cycles + table.time(id, group.width);
            if new_fill <= depth {
                match best {
                    Some((_, fill)) if fill <= new_fill => {}
                    _ => best = Some((g_idx, new_fill)),
                }
            }
        }
        if let Some((g_idx, new_fill)) = best {
            groups[g_idx].modules.push(id);
            groups[g_idx].fill_cycles = new_fill;
            true
        } else {
            false
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn place_with_new_capacity(
        table: &TimeTable,
        groups: &mut Vec<ChannelGroup>,
        id: ModuleId,
        w_min: usize,
        depth: u64,
        max_total_width: usize,
    ) -> Result<(), ()> {
        let used_width: usize = groups.iter().map(|g| g.width).sum();
        if used_width + w_min > max_total_width {
            return Err(());
        }
        let mut best: Vec<ChannelGroup> = {
            let mut candidate = groups.clone();
            candidate.push(ChannelGroup::new(w_min, vec![id], table));
            candidate
        };
        let mut best_free = total_free_memory(&best, depth);
        for g_idx in 0..groups.len() {
            let group = &groups[g_idx];
            let new_width = group.width + w_min;
            if new_width > table.max_width() {
                continue;
            }
            let mut modules = group.modules.clone();
            modules.push(id);
            if table.group_fill(&modules, new_width) > depth {
                continue;
            }
            let mut candidate = groups.clone();
            candidate[g_idx] = ChannelGroup::new(new_width, modules, table);
            let free = total_free_memory(&candidate, depth);
            if free > best_free {
                best = candidate;
                best_free = free;
            }
        }
        *groups = best;
        Ok(())
    }

    pub fn design_with_table(
        table: &TimeTable,
        channels: usize,
        depth: u64,
    ) -> Result<TestArchitecture, ()> {
        if table.num_modules() == 0 {
            return Err(());
        }
        let max_total_width = (channels / 2).min(table.max_width());
        if max_total_width == 0 {
            return Err(());
        }
        let mut min_widths = Vec::with_capacity(table.num_modules());
        for m in 0..table.num_modules() {
            let id = ModuleId(m);
            match table.min_width_for_time(id, depth) {
                Some(w) if w <= max_total_width => min_widths.push((id, w)),
                _ => return Err(()),
            }
        }
        min_widths.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| table.time(b.0, b.1).cmp(&table.time(a.0, a.1)))
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut groups: Vec<ChannelGroup> = Vec::new();
        for &(id, w_min) in &min_widths {
            if try_place_in_existing_group(table, &mut groups, id, depth) {
                continue;
            }
            place_with_new_capacity(table, &mut groups, id, w_min, depth, max_total_width)?;
        }
        Ok(TestArchitecture::new(groups))
    }

    /// The original sort-per-chain redistribution.
    pub fn redistribute_extra_width(
        architecture: &TestArchitecture,
        table: &TimeTable,
        extra_width: usize,
    ) -> (TestArchitecture, usize) {
        let mut arch = architecture.clone();
        let mut added = 0usize;
        for _ in 0..extra_width {
            let mut order: Vec<usize> = (0..arch.groups.len()).collect();
            order.sort_by_key(|&g| std::cmp::Reverse(arch.groups[g].fill_cycles));
            let mut improved = false;
            for g_idx in order {
                let group = &arch.groups[g_idx];
                if group.width + 1 > table.max_width() {
                    continue;
                }
                let new_fill = table.group_fill(&group.modules, group.width + 1);
                if new_fill < group.fill_cycles {
                    let group = &mut arch.groups[g_idx];
                    group.width += 1;
                    group.fill_cycles = new_fill;
                    improved = true;
                    added += 1;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        (arch, added)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_table_build_is_byte_identical_to_sequential(soc in arb_soc()) {
        let parallel = TimeTable::build(&soc, 96);
        let sequential = TimeTable::build_sequential(&soc, 96);
        let reference = TimeTable::build_reference(&soc, 96);
        prop_assert_eq!(&parallel, &sequential);
        prop_assert_eq!(&parallel, &reference);
    }

    #[test]
    fn delta_scored_step1_matches_cloning_reference(soc in arb_soc(), tightness in 1u64..8) {
        let depth = (feasible_depth(&soc) / tightness).max(1);
        let table = TimeTable::build(&soc, 128);
        let fast = design_with_table(&table, 256, depth);
        let slow = reference::design_with_table(&table, 256, depth);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => prop_assert_eq!(fast, slow),
            (Err(_), Err(())) => {}
            (fast, slow) => {
                return Err(TestCaseError::fail(format!(
                    "feasibility disagreement: fast {fast:?} vs reference {slow:?}"
                )));
            }
        }
    }

    #[test]
    fn heap_redistribution_matches_sorting_reference(soc in arb_soc(), extra in 0usize..24) {
        let depth = feasible_depth(&soc);
        let table = TimeTable::build(&soc, 128);
        if let Ok(arch) = design_with_table(&table, 256, depth) {
            let fast = redistribute_extra_width(&arch, &table, extra);
            let (slow_arch, slow_added) =
                reference::redistribute_extra_width(&arch, &table, extra);
            prop_assert_eq!(fast.architecture, slow_arch);
            prop_assert_eq!(fast.width_added, slow_added);
        }
    }
}
