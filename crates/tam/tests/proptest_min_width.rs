//! Property proofs for the `min_width_for_time` lookups.
//!
//! Both the eager `partition_point` lookup and the lazy probing binary
//! search assume the test-time row is non-increasing in width. That is a
//! theorem (see the *Width monotonicity* section of `soctest_wrapper::row`'s
//! module docs: greedy least-loaded placement preserves a count-dominance
//! invariant when a bin is added, which bounds both the LPT makespan and
//! the water-fill level), and these property tests cross-check it — plus
//! the first-feasible semantics of every lookup — against brute force on
//! random module shapes.

use proptest::collection::vec;
use proptest::prelude::*;
use soctest_soc_model::{Module, ModuleId, Soc};
use soctest_tam::{LazyTimeTable, TimeLookup, TimeTable};

prop_compose! {
    fn arb_module()(
        chains in vec(0u64..3000, 0..20),
        patterns in 1u64..1500,
        inputs in 0u32..150,
        outputs in 0u32..150,
        bidirs in 0u32..40,
    ) -> Module {
        Module::builder("prop")
            .patterns(patterns)
            .inputs(inputs)
            .outputs(outputs)
            .bidirs(bidirs)
            .scan_chains(chains)
            .build()
    }
}

const MAX_WIDTH: usize = 40;

proptest! {
    #[test]
    fn rows_are_non_increasing_in_width(module in arb_module()) {
        let soc = Soc::from_modules("prop", vec![module]);
        let table = TimeTable::build_sequential(&soc, MAX_WIDTH);
        let id = ModuleId(0);
        for width in 2..=MAX_WIDTH {
            prop_assert!(
                table.time(id, width) <= table.time(id, width - 1),
                "anomaly at width {}: {} > {}",
                width,
                table.time(id, width),
                table.time(id, width - 1)
            );
        }
    }

    #[test]
    fn partition_point_lookup_equals_linear_first_feasible_scan(
        module in arb_module(),
        budget_seed in 0u64..u64::MAX,
    ) {
        let soc = Soc::from_modules("prop", vec![module]);
        let table = TimeTable::build_sequential(&soc, MAX_WIDTH);
        let id = ModuleId(0);
        // Budgets that exercise every row plateau: each row value, each
        // row value minus one, and a pseudo-random probe in between.
        let mut budgets: Vec<u64> = (1..=MAX_WIDTH)
            .flat_map(|w| {
                let t = table.time(id, w);
                [t, t.saturating_sub(1)]
            })
            .collect();
        budgets.push(budget_seed % (table.time(id, 1).saturating_mul(2).max(1)));
        budgets.push(0);
        budgets.push(u64::MAX);
        for budget in budgets {
            let linear = (1..=MAX_WIDTH).find(|&w| table.time(id, w) <= budget);
            prop_assert_eq!(
                table.min_width_for_time(id, budget),
                linear,
                "eager lookup diverged from the linear scan at budget {}",
                budget
            );
        }
    }

    #[test]
    fn lazy_binary_search_equals_linear_first_feasible_scan(module in arb_module()) {
        let soc = Soc::from_modules("prop", vec![module]);
        let eager = TimeTable::build_sequential(&soc, MAX_WIDTH);
        let lazy = LazyTimeTable::new(&soc, MAX_WIDTH);
        let id = ModuleId(0);
        let budgets: Vec<u64> = (1..=MAX_WIDTH)
            .flat_map(|w| {
                let t = eager.time(id, w);
                [t, t.saturating_sub(1)]
            })
            .chain([0, u64::MAX])
            .collect();
        for budget in budgets {
            let linear = (1..=MAX_WIDTH).find(|&w| eager.time(id, w) <= budget);
            prop_assert_eq!(
                TimeLookup::min_width_for_time(&lazy, id, budget),
                linear,
                "lazy lookup diverged from the linear scan at budget {}",
                budget
            );
        }
    }
}
