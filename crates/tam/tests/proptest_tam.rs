//! Property-based tests for the test-architecture design algorithms.

use proptest::prelude::*;
use soctest_soc_model::{Module, ModuleId, Soc};
use soctest_tam::baseline::{lower_bound_channels, pack_with_table};
use soctest_tam::redistribute::redistribute_extra_width;
use soctest_tam::step1::design_with_table;
use soctest_tam::TimeTable;

prop_compose! {
    fn arb_module(index: usize)(
        patterns in 1u64..150,
        inputs in 1u32..60,
        outputs in 1u32..60,
        chains in proptest::collection::vec(1u64..200, 0..8),
    ) -> Module {
        Module::builder(format!("m{index}"))
            .patterns(patterns)
            .inputs(inputs)
            .outputs(outputs)
            .scan_chains(chains)
            .build()
    }
}

fn arb_soc() -> impl Strategy<Value = Soc> {
    (2usize..14).prop_flat_map(|n| {
        let modules: Vec<_> = (0..n).map(arb_module).collect();
        modules.prop_map(|ms| Soc::from_modules("prop_soc", ms))
    })
}

/// A memory depth that is always feasible for the generated SOCs: the
/// fully-serial single-chain time of the largest module, doubled.
fn feasible_depth(soc: &Soc) -> u64 {
    let table = TimeTable::build(soc, 1);
    let worst = (0..soc.num_modules())
        .map(|m| table.time(ModuleId(m), 1))
        .max()
        .unwrap_or(1);
    worst * 2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn step1_produces_valid_architectures(soc in arb_soc(), tightness in 1u64..8) {
        let depth = (feasible_depth(&soc) / tightness).max(feasible_depth(&soc) / 8).max(1);
        let channels = 256usize;
        let table = TimeTable::build(&soc, channels / 2);
        match design_with_table(&table, channels, depth) {
            Ok(arch) => {
                prop_assert!(arch.fits(depth));
                prop_assert!(arch.total_channels() <= channels);
                prop_assert_eq!(arch.total_channels() % 2, 0);
                let assigned = arch.assigned_modules();
                let expected: Vec<ModuleId> = soc.module_ids().collect();
                prop_assert_eq!(assigned, expected);
            }
            Err(_) => {
                // Only acceptable when some module truly cannot meet the depth.
                let impossible = (0..soc.num_modules())
                    .any(|m| table.min_width_for_time(ModuleId(m), depth).is_none());
                prop_assert!(impossible, "design failed although every module fits");
            }
        }
    }

    #[test]
    fn step1_respects_the_lower_bound(soc in arb_soc()) {
        let depth = feasible_depth(&soc);
        let table = TimeTable::build(&soc, 128);
        let lb = lower_bound_channels(&table, depth).expect("depth chosen to be feasible");
        let arch = design_with_table(&table, 256, depth).expect("depth chosen to be feasible");
        prop_assert!(arch.total_channels() >= lb);
    }

    #[test]
    fn step1_is_competitive_with_baseline(soc in arb_soc(), tightness in 1u64..6) {
        // Both Step 1 and the rectangle packer are heuristics; as in the
        // paper (which loses one Table 1 entry to [7]), either may win a
        // particular instance by a small margin. Step 1 must never be more
        // than one wrapper-chain pair (2 channels) worse, and must always
        // respect the theoretical lower bound.
        let depth = (feasible_depth(&soc) / tightness).max(1);
        let table = TimeTable::build(&soc, 128);
        let ours = design_with_table(&table, 256, depth);
        let baseline = pack_with_table(&table, 256, depth);
        if let (Ok(ours), Ok(baseline)) = (ours, baseline) {
            prop_assert!(ours.total_channels() <= baseline.architecture.total_channels() + 2);
            let lb = lower_bound_channels(&table, depth).expect("instances are feasible");
            prop_assert!(ours.total_channels() >= lb);
        }
    }

    #[test]
    fn deeper_memory_never_needs_more_channels(soc in arb_soc()) {
        let base = feasible_depth(&soc);
        let table = TimeTable::build(&soc, 128);
        let shallow = design_with_table(&table, 256, base);
        let deep = design_with_table(&table, 256, base * 4);
        if let (Ok(shallow), Ok(deep)) = (shallow, deep) {
            prop_assert!(deep.total_channels() <= shallow.total_channels());
        }
    }

    #[test]
    fn redistribution_is_monotone_and_preserves_assignment(soc in arb_soc(), extra in 0usize..12) {
        let depth = feasible_depth(&soc);
        let table = TimeTable::build(&soc, 128);
        if let Ok(arch) = design_with_table(&table, 256, depth) {
            let widened = redistribute_extra_width(&arch, &table, extra);
            prop_assert!(widened.architecture.test_time_cycles() <= arch.test_time_cycles());
            prop_assert!(widened.architecture.fits(depth));
            prop_assert_eq!(widened.architecture.assigned_modules(), arch.assigned_modules());
            prop_assert_eq!(
                widened.architecture.total_width(),
                arch.total_width() + widened.width_added
            );
        }
    }
}
