//! Channel groups and the SOC test architecture.

use crate::timetable::TimeLookup;
use serde::{Deserialize, Serialize};
use soctest_soc_model::ModuleId;
use std::fmt;

/// One channel group (TAM): a bundle of `width` wrapper-chain connections
/// shared by a set of modules that are tested serially on it.
///
/// A group of width `w` consumes `2·w` ATE channels: `w` for stimuli and `w`
/// for responses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelGroup {
    /// TAM width in wrapper chains.
    pub width: usize,
    /// Modules assigned to this group (tested serially in this order).
    pub modules: Vec<ModuleId>,
    /// Vector-memory fill of the group in cycles: the sum of the assigned
    /// modules' test times at this group's width.
    pub fill_cycles: u64,
}

impl ChannelGroup {
    /// Creates a group of the given width containing `modules`, computing
    /// the fill from `table` (eager or lazy — any [`TimeLookup`]).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or exceeds the table's maximum width.
    pub fn new<T: TimeLookup + ?Sized>(width: usize, modules: Vec<ModuleId>, table: &T) -> Self {
        assert!(width > 0, "a channel group has at least one wrapper chain");
        let fill_cycles = table.group_fill(&modules, width);
        ChannelGroup {
            width,
            modules,
            fill_cycles,
        }
    }

    /// ATE channels consumed by this group (`2·width`).
    pub fn channels(&self) -> usize {
        2 * self.width
    }

    /// Free vector memory (in cycles) under a per-channel depth of `depth`.
    pub fn free_cycles(&self, depth: u64) -> u64 {
        depth.saturating_sub(self.fill_cycles)
    }

    /// Whether the group's test fits within `depth` cycles.
    pub fn fits(&self, depth: u64) -> bool {
        self.fill_cycles <= depth
    }

    /// Recomputes the fill after the width or module list changed.
    pub fn refresh_fill<T: TimeLookup + ?Sized>(&mut self, table: &T) {
        self.fill_cycles = table.group_fill(&self.modules, self.width);
    }
}

impl fmt::Display for ChannelGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group(w={}, {} modules, fill={} cycles)",
            self.width,
            self.modules.len(),
            self.fill_cycles
        )
    }
}

/// A complete test architecture for one SOC: a set of channel groups that
/// together hold every module exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TestArchitecture {
    /// The channel groups.
    pub groups: Vec<ChannelGroup>,
}

impl TestArchitecture {
    /// Creates an architecture from channel groups.
    pub fn new(groups: Vec<ChannelGroup>) -> Self {
        TestArchitecture { groups }
    }

    /// Total TAM width over all groups, in wrapper chains.
    pub fn total_width(&self) -> usize {
        self.groups.iter().map(|g| g.width).sum()
    }

    /// Total ATE channels consumed by one SOC: `2 ·` total width. This is
    /// the `k` of the paper (always even).
    pub fn total_channels(&self) -> usize {
        2 * self.total_width()
    }

    /// SOC test application time in cycles: all groups run in parallel, so
    /// the SOC finishes when its fullest group finishes.
    pub fn test_time_cycles(&self) -> u64 {
        self.groups.iter().map(|g| g.fill_cycles).max().unwrap_or(0)
    }

    /// Required ATE vector-memory depth (identical to the test time — one
    /// vector per cycle per channel).
    pub fn required_depth(&self) -> u64 {
        self.test_time_cycles()
    }

    /// Total free vector memory over all used channels, in channel-cycles
    /// (the quantity maximised by the paper's tie-breaking rule in Step 1).
    pub fn total_free_memory(&self, depth: u64) -> u64 {
        self.groups
            .iter()
            .map(|g| g.free_cycles(depth) * g.channels() as u64)
            .sum()
    }

    /// Whether every group fits within `depth` cycles.
    pub fn fits(&self, depth: u64) -> bool {
        self.groups.iter().all(|g| g.fits(depth))
    }

    /// Number of modules assigned over all groups.
    pub fn num_modules(&self) -> usize {
        self.groups.iter().map(|g| g.modules.len()).sum()
    }

    /// All assigned module ids, sorted (for validation).
    pub fn assigned_modules(&self) -> Vec<ModuleId> {
        let mut ids: Vec<ModuleId> = self
            .groups
            .iter()
            .flat_map(|g| g.modules.iter().copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Maximum multi-site count achievable with this architecture on an ATE
    /// with `ate_channels` channels, **without** stimulus broadcast:
    /// `⌊K / k⌋`.
    pub fn max_sites_without_broadcast(&self, ate_channels: usize) -> usize {
        ate_channels.checked_div(self.total_channels()).unwrap_or(0)
    }

    /// Maximum multi-site count achievable with this architecture on an ATE
    /// with `ate_channels` channels, **with** stimulus broadcast: the `k/2`
    /// stimulus channels are shared by all sites, every site still needs its
    /// own `k/2` response channels: `⌊(K − k/2) / (k/2)⌋`.
    pub fn max_sites_with_broadcast(&self, ate_channels: usize) -> usize {
        let half = self.total_channels() / 2;
        if half == 0 || ate_channels < half {
            0
        } else {
            (ate_channels - half) / half
        }
    }
}

impl fmt::Display for TestArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "architecture: {} groups, k={} channels, t={} cycles",
            self.groups.len(),
            self.total_channels(),
            self.test_time_cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timetable::TimeTable;
    use soctest_soc_model::benchmarks::d695;

    fn fixture() -> (TimeTable, TestArchitecture) {
        let soc = d695();
        let table = TimeTable::build(&soc, 16);
        let g0 = ChannelGroup::new(4, vec![ModuleId(0), ModuleId(1), ModuleId(2)], &table);
        let g1 = ChannelGroup::new(6, vec![ModuleId(3), ModuleId(4), ModuleId(5)], &table);
        let g2 = ChannelGroup::new(2, (6..10).map(ModuleId).collect(), &table);
        (table, TestArchitecture::new(vec![g0, g1, g2]))
    }

    #[test]
    fn group_channels_are_twice_the_width() {
        let (table, _) = fixture();
        let g = ChannelGroup::new(5, vec![ModuleId(0)], &table);
        assert_eq!(g.channels(), 10);
    }

    #[test]
    fn group_fill_is_sum_of_module_times() {
        let (table, arch) = fixture();
        for group in &arch.groups {
            assert_eq!(
                group.fill_cycles,
                table.group_fill(&group.modules, group.width)
            );
        }
    }

    #[test]
    fn group_free_cycles_saturate() {
        let (table, _) = fixture();
        let g = ChannelGroup::new(1, vec![ModuleId(4)], &table);
        assert_eq!(g.free_cycles(0), 0);
        assert!(g.free_cycles(u64::MAX) > 0);
        assert!(!g.fits(10));
    }

    #[test]
    fn architecture_totals() {
        let (_, arch) = fixture();
        assert_eq!(arch.total_width(), 12);
        assert_eq!(arch.total_channels(), 24);
        assert_eq!(arch.num_modules(), 10);
        let expected_ids: Vec<ModuleId> = (0..10).map(ModuleId).collect();
        assert_eq!(arch.assigned_modules(), expected_ids);
    }

    #[test]
    fn test_time_is_max_group_fill() {
        let (_, arch) = fixture();
        let max_fill = arch.groups.iter().map(|g| g.fill_cycles).max().unwrap();
        assert_eq!(arch.test_time_cycles(), max_fill);
        assert_eq!(arch.required_depth(), max_fill);
    }

    #[test]
    fn fits_reflects_depth() {
        let (_, arch) = fixture();
        assert!(arch.fits(u64::MAX));
        assert!(!arch.fits(1));
    }

    #[test]
    fn free_memory_counts_channels() {
        let (table, _) = fixture();
        let g = ChannelGroup::new(3, vec![ModuleId(0)], &table);
        let arch = TestArchitecture::new(vec![g.clone()]);
        let depth = g.fill_cycles + 100;
        assert_eq!(arch.total_free_memory(depth), 100 * 6);
    }

    #[test]
    fn multi_site_formulas() {
        let (_, arch) = fixture(); // k = 24
        assert_eq!(arch.max_sites_without_broadcast(256), 10);
        // With broadcast: (256 - 12) / 12 = 20.
        assert_eq!(arch.max_sites_with_broadcast(256), 20);
        // Degenerate cases.
        assert_eq!(
            TestArchitecture::default().max_sites_without_broadcast(256),
            0
        );
        assert_eq!(TestArchitecture::default().max_sites_with_broadcast(256), 0);
        assert_eq!(arch.max_sites_with_broadcast(4), 0);
    }

    #[test]
    fn refresh_fill_tracks_width_changes() {
        let (table, _) = fixture();
        let mut g = ChannelGroup::new(2, vec![ModuleId(4), ModuleId(9)], &table);
        let narrow_fill = g.fill_cycles;
        g.width = 8;
        g.refresh_fill(&table);
        assert!(g.fill_cycles < narrow_fill);
    }

    #[test]
    fn empty_architecture_has_zero_time() {
        let arch = TestArchitecture::default();
        assert_eq!(arch.test_time_cycles(), 0);
        assert_eq!(arch.total_channels(), 0);
        assert!(arch.fits(0));
    }

    #[test]
    #[should_panic(expected = "at least one wrapper chain")]
    fn zero_width_group_panics() {
        let (table, _) = fixture();
        let _ = ChannelGroup::new(0, vec![], &table);
    }

    #[test]
    fn display_formats() {
        let (table, arch) = fixture();
        assert!(arch.to_string().contains("k=24"));
        let g = ChannelGroup::new(1, vec![ModuleId(0)], &table);
        assert!(g.to_string().contains("w=1"));
    }
}
