//! Baselines for Table 1: the rectangle-bin-packing approach of Iyengar et
//! al. (ITC 2002, reference \[7\]) and the theoretical lower bound on the
//! per-SOC channel count.
//!
//! Reference \[7\] models every module as a rectangle — TAM width times test
//! time — and packs the rectangles into a bin whose height is the ATE
//! vector-memory depth, minimising the bin width (the number of ATE
//! channels). Since the original tool is not available, this module
//! reimplements the published approach as a first-fit-decreasing column
//! packer: it answers the same question as Step 1 ("how few channels does
//! the SOC need on this ATE?") but without Step 1's best-fit placement and
//! group-widening moves, which is exactly the gap the paper exploits.

use crate::architecture::{ChannelGroup, TestArchitecture};
use crate::error::TamError;
use crate::timetable::{clamped_tam_width, max_tam_width, TimeTable};
use soctest_ate::AteSpec;
use soctest_soc_model::{ModuleId, Soc};

/// Theoretical lower bound on the number of ATE channels needed by one SOC
/// under a vector-memory depth of `depth` cycles (the "LB" column of
/// Table 1).
///
/// Two bounds are combined:
///
/// * *volume bound*: the sum over all modules of their minimal test-data
///   area (width × time, minimised over widths) must fit into
///   `total_width · depth` channel-cycles,
/// * *bottleneck bound*: no module may need a wider TAM than the SOC gets in
///   total.
///
/// The result is expressed in ATE channels (twice the wrapper-chain width)
/// and is always even. Returns `None` when some module cannot meet the depth
/// at any width covered by the table.
pub fn lower_bound_channels(table: &TimeTable, depth: u64) -> Option<usize> {
    let mut total_area: u64 = 0;
    let mut bottleneck_width = 0usize;
    for m in 0..table.num_modules() {
        let id = ModuleId(m);
        let w_min = table.min_width_for_time(id, depth)?;
        bottleneck_width = bottleneck_width.max(w_min);
        total_area += table.min_area(id);
    }
    let volume_width = total_area.div_ceil(depth.max(1)) as usize;
    Some(2 * volume_width.max(bottleneck_width).max(1))
}

/// Result of the rectangle-packing baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineResult {
    /// The architecture found by the baseline packer.
    pub architecture: TestArchitecture,
    /// The theoretical lower bound on channels for the same SOC and depth.
    pub lower_bound_channels: usize,
}

/// Runs the rectangle-bin-packing baseline of \[7\]: finds the smallest
/// total channel count (searching upward from the lower bound) for which a
/// first-fit-decreasing packing of the module rectangles fits the depth.
///
/// # Errors
///
/// Same failure modes as Step 1: [`TamError::EmptySoc`],
/// [`TamError::ModuleInfeasible`] and [`TamError::InsufficientChannels`].
pub fn pack_minimal_channels(soc: &Soc, ate: &AteSpec) -> Result<BaselineResult, TamError> {
    let table = TimeTable::build(soc, max_tam_width(ate.channels));
    pack_with_table(&table, ate.channels, ate.vector_memory_depth)
}

/// Baseline packer on a prebuilt [`TimeTable`].
///
/// # Errors
///
/// See [`pack_minimal_channels`].
pub fn pack_with_table(
    table: &TimeTable,
    channels: usize,
    depth: u64,
) -> Result<BaselineResult, TamError> {
    if table.num_modules() == 0 {
        return Err(TamError::EmptySoc);
    }
    let max_total_width = clamped_tam_width(table, channels);
    if max_total_width == 0 {
        return Err(TamError::InsufficientChannels {
            available_channels: channels,
        });
    }

    // Per-module minimum widths; also detect infeasible modules.
    let mut min_widths = Vec::with_capacity(table.num_modules());
    for m in 0..table.num_modules() {
        let id = ModuleId(m);
        match table.min_width_for_time(id, depth) {
            Some(w) if w <= max_total_width => min_widths.push((id, w)),
            _ => {
                return Err(TamError::ModuleInfeasible {
                    module: format!("{id}"),
                    depth,
                    max_width: max_total_width,
                })
            }
        }
    }
    let lower_bound = lower_bound_channels(table, depth).expect("feasibility already established");

    // Search the smallest feasible total width, starting at the lower bound.
    let start_width = (lower_bound / 2).max(1);
    for total_width in start_width..=max_total_width {
        if let Some(groups) = try_pack(table, &min_widths, depth, total_width) {
            return Ok(BaselineResult {
                architecture: TestArchitecture::new(groups),
                lower_bound_channels: lower_bound,
            });
        }
    }
    Err(TamError::InsufficientChannels {
        available_channels: channels,
    })
}

/// First-fit-decreasing column packing at a fixed total width budget.
fn try_pack(
    table: &TimeTable,
    min_widths: &[(ModuleId, usize)],
    depth: u64,
    total_width: usize,
) -> Option<Vec<ChannelGroup>> {
    // Decreasing minimum width, then decreasing time (bulk first) — the
    // classic first-fit-decreasing order.
    let mut order = min_widths.to_vec();
    order.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| table.time(b.0, b.1).cmp(&table.time(a.0, a.1)))
            .then_with(|| a.0.cmp(&b.0))
    });

    let mut groups: Vec<ChannelGroup> = Vec::new();
    let mut used_width = 0usize;
    for &(id, w_min) in &order {
        // First fit: the first existing column the module fits into.
        let mut placed = false;
        for group in groups.iter_mut() {
            let new_fill = group
                .fill_cycles
                .checked_add(table.time(id, group.width))
                .expect("channel-group fill overflows u64");
            if new_fill <= depth {
                group.modules.push(id);
                group.fill_cycles = new_fill;
                placed = true;
                break;
            }
        }
        if placed {
            continue;
        }
        // Open a new column of the module's minimum width.
        if used_width + w_min > total_width {
            return None;
        }
        groups.push(ChannelGroup::new(w_min, vec![id], table));
        used_width += w_min;
    }
    Some(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step1::design_with_table;
    use soctest_soc_model::benchmarks::{d695, p22810, p93791};
    use soctest_soc_model::{Module, Soc};

    #[test]
    fn lower_bound_is_a_true_bound_for_step1_and_baseline() {
        for (soc, depth) in [
            (d695(), 64 * 1024u64),
            (p22810(), 512 * 1024),
            (p93791(), 2 * 1024 * 1024),
        ] {
            let table = TimeTable::build(&soc, 256);
            let lb = lower_bound_channels(&table, depth).unwrap();
            let ours = design_with_table(&table, 512, depth).unwrap();
            let baseline = pack_with_table(&table, 512, depth).unwrap();
            assert!(
                ours.total_channels() >= lb,
                "{}: step1 below LB",
                soc.name()
            );
            assert!(
                baseline.architecture.total_channels() >= lb,
                "{}: baseline below LB",
                soc.name()
            );
        }
    }

    #[test]
    fn step1_never_uses_more_channels_than_the_baseline() {
        for (soc, depth) in [
            (d695(), 48 * 1024u64),
            (d695(), 96 * 1024),
            (p22810(), 768 * 1024),
            (p93791(), 1_500_000),
        ] {
            let table = TimeTable::build(&soc, 256);
            let ours = design_with_table(&table, 512, depth).unwrap();
            let baseline = pack_with_table(&table, 512, depth).unwrap();
            assert!(
                ours.total_channels() <= baseline.architecture.total_channels(),
                "{} at depth {}: ours {} > baseline {}",
                soc.name(),
                depth,
                ours.total_channels(),
                baseline.architecture.total_channels()
            );
        }
    }

    #[test]
    fn baseline_architecture_is_valid() {
        let soc = p22810();
        let depth = 512 * 1024;
        let table = TimeTable::build(&soc, 256);
        let result = pack_with_table(&table, 512, depth).unwrap();
        let arch = &result.architecture;
        assert!(arch.fits(depth));
        assert_eq!(
            arch.assigned_modules(),
            soc.module_ids().collect::<Vec<_>>()
        );
        assert!(arch.total_channels() <= 512);
        assert_eq!(arch.total_channels() % 2, 0);
    }

    #[test]
    fn lower_bound_grows_as_depth_shrinks() {
        let soc = p93791();
        let table = TimeTable::build(&soc, 256);
        let lb_shallow = lower_bound_channels(&table, 1_000_000).unwrap();
        let lb_deep = lower_bound_channels(&table, 3_500_000).unwrap();
        assert!(lb_shallow > lb_deep);
    }

    #[test]
    fn lower_bound_none_for_impossible_depth() {
        let soc = Soc::from_modules(
            "huge",
            vec![Module::builder("m")
                .patterns(1000)
                .scan_chain(1000)
                .inputs(1)
                .build()],
        );
        let table = TimeTable::build(&soc, 64);
        assert_eq!(lower_bound_channels(&table, 100), None);
    }

    #[test]
    fn empty_soc_is_rejected() {
        let soc = Soc::new("empty");
        let ate = AteSpec::new(64, 1024, 1.0e6);
        assert_eq!(pack_minimal_channels(&soc, &ate), Err(TamError::EmptySoc));
    }

    #[test]
    fn baseline_reports_lower_bound() {
        let soc = d695();
        let ate = AteSpec::new(256, 64 * 1024, 5.0e6);
        let result = pack_minimal_channels(&soc, &ate).unwrap();
        assert!(result.lower_bound_channels >= 2);
        assert!(result.architecture.total_channels() >= result.lower_bound_channels);
    }

    #[test]
    fn infeasible_module_is_reported() {
        let soc = Soc::from_modules(
            "huge",
            vec![Module::builder("m")
                .patterns(10_000)
                .scan_chain(10_000)
                .inputs(1)
                .build()],
        );
        let ate = AteSpec::new(64, 1024, 1.0e6);
        assert!(matches!(
            pack_minimal_channels(&soc, &ate),
            Err(TamError::ModuleInfeasible { .. })
        ));
    }
}
