//! The content-addressed module row store: `hash(ModuleShape) → time row`.
//!
//! The optimizer's dominant cost is computing `t(m, w)` cells, and the
//! identity of a cell depends on nothing but the module's *shape* — its
//! pattern count, wrapper cell counts, and sorted scan-chain lengths
//! ([`ModuleShape::content_key`]). Two modules with equal shapes have
//! bit-identical rows even across different SOCs, so a store keyed by
//! shape content lets
//!
//! * a table regrown wider re-serve every cell the narrower table built,
//! * two SOCs sharing module profiles (the NoC-reuse workloads of Amory
//!   et al.) share rows inside one process, and
//! * a **new process** start warm from a cache directory
//!   (`soc-serve --cache-dir`), never recomputing a row an earlier run
//!   produced.
//!
//! Lookups are content-addressed in the torc-verify `ProofCache` style:
//! an FNV-1a fast path over the canonical key bytes, with the full key
//! compared on hash hits so a (cosmically unlikely) collision degrades to
//! two separate rows, never to a wrong time.
//!
//! # On-disk format (`rows.v1`)
//!
//! A single little-endian binary file, atomically replaced on save
//! (write-to-temp + rename), so concurrent writers and crashed processes
//! can only ever leave a fully old, fully new, or checksum-failing file:
//!
//! ```text
//! magic    b"SOCROWS" + version byte b'1'
//! payload  u64 row_count, then per row (coldest-touched first):
//!              u64 shape hash
//!              u64 key length, then the canonical key bytes
//!              u64 cell count, then per cell: u64 width, u64 time
//! trailer  u64 FNV-1a of every preceding byte (magic included)
//! ```
//!
//! Row *order* carries the last-touch recency: rows are written coldest
//! first (ties broken by `(hash, key)` so saves stay deterministic), and
//! [`RowStore::load`] replays touches in file order, so recency survives
//! a save/load cycle without any change to the byte layout — files
//! written before ordering existed still load, they just start with an
//! arbitrary recency. That ordering is what [`RowStore::save_capped`]
//! compacts by: when the serialized store exceeds its byte bound, the
//! coldest rows are dropped until the file fits.
//!
//! The envelope (magic + version + checksummed payload + atomic rename)
//! is shared with the service's `solutions.v1` file through
//! [`seal_envelope`], [`open_envelope`] and [`write_atomic`].
//!
//! [`RowStore::load`] verifies the magic, the version, the checksum and
//! every length field *before* touching the resident map; any mismatch —
//! truncation, bit flips, version bumps, torn concurrent writes — returns
//! a typed [`StoreError`] and leaves the store exactly as it was, so a
//! corrupt cache file is a clean miss, never a panic and never a wrong
//! row (`crates/tam/tests/row_store_corruption.rs`).

use soctest_wrapper::row::ModuleShape;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// File magic (7 bytes) followed by the one-byte format version.
const MAGIC: &[u8; 7] = b"SOCROWS";
/// Current on-disk format version byte.
const VERSION: u8 = b'1';

/// The process-wide last-touch clock: every [`StoreRow::get`] /
/// [`StoreRow::insert`] stamps its row with the next tick, so "coldest"
/// is well-defined across every store in the process. Only the ordering
/// of stamps matters, never their absolute values.
static TOUCH_CLOCK: AtomicU64 = AtomicU64::new(1);

/// FNV-1a 64-bit over raw bytes — the same stable, dependency-free hash
/// the service registry uses over canonical SOC text.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a cache file was rejected. Every variant is a *clean miss*: the
/// resident store is untouched and the caller may simply proceed cold.
#[derive(Debug)]
pub enum StoreError {
    /// The file could not be read (except `NotFound`, which loaders treat
    /// as an empty store before constructing this error).
    Io(io::Error),
    /// The bytes were readable but not a valid `rows.v1` file: bad magic,
    /// unsupported version, checksum mismatch, truncated or trailing data.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "row-store file unreadable: {err}"),
            StoreError::Corrupt(why) => write!(f, "row-store file rejected: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// One resident row: the canonical shape identity plus every `(width,
/// time)` cell known for it. Shared (`Arc`) between the store, every
/// table that resolved it, and the persistence layer.
#[derive(Debug)]
pub struct StoreRow {
    hash: u64,
    key: Vec<u8>,
    cells: Mutex<BTreeMap<u64, u64>>,
    /// Last [`TOUCH_CLOCK`] tick that read or wrote this row — the
    /// recency [`RowStore::save_capped`] compacts by.
    touch: AtomicU64,
}

impl StoreRow {
    fn new(hash: u64, key: Vec<u8>) -> Self {
        StoreRow {
            hash,
            key,
            cells: Mutex::new(BTreeMap::new()),
            touch: AtomicU64::new(0),
        }
    }

    fn touch_now(&self) {
        self.touch.store(
            TOUCH_CLOCK.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// The cached time at `width`, if any earlier computation produced it.
    pub fn get(&self, width: usize) -> Option<u64> {
        self.touch_now();
        lock(&self.cells).get(&(width as u64)).copied()
    }

    /// Records `time` at `width`; returns `true` iff the cell was absent.
    /// First writer wins — racing writers carry the same deterministic
    /// value, so the "loser" changes nothing.
    pub fn insert(&self, width: usize, time: u64) -> bool {
        self.touch_now();
        lock(&self.cells).insert(width as u64, time).is_none()
    }

    /// Number of cells resident in this row.
    pub fn len(&self) -> usize {
        lock(&self.cells).len()
    }

    /// Whether no cell is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Point-in-time counters of a [`RowStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RowStoreStats {
    /// Distinct shapes resident.
    pub rows: u64,
    /// `(shape, width)` cells resident across all rows.
    pub cells: u64,
    /// Cells computed fresh since construction — counted on first insert
    /// of a `(shape, width)` pair, so the count is deterministic under
    /// racing duplicate computations. "Zero rows rebuilt" on a warm
    /// restart means exactly this counter staying zero.
    pub cells_computed: u64,
    /// Cells a table filled from the store instead of computing (counted
    /// by the first table cell each serves; concurrent probes that race a
    /// fresh computation may compute instead of hitting, so this counter
    /// is a lower bound under parallelism).
    pub cells_served: u64,
    /// Cells merged from disk by [`RowStore::load`].
    pub cells_loaded: u64,
}

impl RowStoreStats {
    /// Counter growth from `earlier` to `self` — the same epoch/diff
    /// pattern as `LazyTimeTable::stats_epoch`, so one request's store
    /// traffic can be attributed by snapshotting around it. Saturating:
    /// `rows`/`cells` are resident gauges, so their "delta" is growth
    /// (never negative), and stale snapshots yield zeros.
    #[must_use]
    pub fn delta_since(&self, earlier: &RowStoreStats) -> RowStoreStats {
        RowStoreStats {
            rows: self.rows.saturating_sub(earlier.rows),
            cells: self.cells.saturating_sub(earlier.cells),
            cells_computed: self.cells_computed.saturating_sub(earlier.cells_computed),
            cells_served: self.cells_served.saturating_sub(earlier.cells_served),
            cells_loaded: self.cells_loaded.saturating_sub(earlier.cells_loaded),
        }
    }
}

/// A process-wide, thread-safe store of content-addressed module rows.
/// See the [module docs](self).
#[derive(Debug, Default)]
pub struct RowStore {
    rows: Mutex<HashMap<u64, Vec<Arc<StoreRow>>>>,
    cells_computed: AtomicU64,
    cells_served: AtomicU64,
    cells_loaded: AtomicU64,
}

impl RowStore {
    /// An empty store.
    pub fn new() -> Self {
        RowStore::default()
    }

    /// The resident row for `shape`, created empty if absent. The handle
    /// is shared: every table resolving an equal shape gets the same row.
    pub fn row_for_shape(&self, shape: &ModuleShape) -> Arc<StoreRow> {
        self.row_for_key(shape.content_hash(), || shape.content_key())
    }

    /// Get-or-create by `(hash, key)`; `make_key` runs only when a new
    /// row (or a collision check) needs the full key bytes.
    fn row_for_key(&self, hash: u64, make_key: impl FnOnce() -> Vec<u8>) -> Arc<StoreRow> {
        let mut rows = lock(&self.rows);
        let bucket = rows.entry(hash).or_default();
        let key = make_key();
        if let Some(row) = bucket.iter().find(|row| row.key == key) {
            return Arc::clone(row);
        }
        let row = Arc::new(StoreRow::new(hash, key));
        bucket.push(Arc::clone(&row));
        row
    }

    /// Counts one fresh `(shape, width)` computation. Call only when
    /// [`StoreRow::insert`] returned `true` — that guard is what keeps the
    /// counter deterministic under racing duplicate computations.
    pub(crate) fn note_computed(&self) {
        self.cells_computed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one table cell filled from the store (first filler only).
    pub(crate) fn note_served(&self) {
        self.cells_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counters.
    pub fn stats(&self) -> RowStoreStats {
        let rows = lock(&self.rows);
        let mut stats = RowStoreStats {
            cells_computed: self.cells_computed.load(Ordering::Relaxed),
            cells_served: self.cells_served.load(Ordering::Relaxed),
            cells_loaded: self.cells_loaded.load(Ordering::Relaxed),
            ..RowStoreStats::default()
        };
        for row in rows.values().flatten() {
            stats.rows += 1;
            stats.cells += row.len() as u64;
        }
        stats
    }

    /// Merges every row of the `rows.v1` file at `path` into the store
    /// (resident cells win ties; the values are deterministic anyway) and
    /// returns the number of cells merged.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on unreadable, truncated, corrupted or
    /// version-mismatched files. The store is untouched on error — the
    /// whole file is parsed and verified first.
    pub fn load(&self, path: &Path) -> Result<u64, StoreError> {
        let bytes = fs::read(path)?;
        let parsed = parse_rows_file(&bytes)?;
        let mut merged = 0u64;
        for (hash, key, cells) in parsed {
            let row = self.row_for_key(hash, || key);
            for (width, time) in cells {
                if row.insert(width as usize, time) {
                    merged += 1;
                }
            }
            // Replay the file's recency: rows are stored coldest first,
            // so touching in file order restores the save-time ordering.
            row.touch_now();
        }
        self.cells_loaded.fetch_add(merged, Ordering::Relaxed);
        Ok(merged)
    }

    /// [`RowStore::load`], treating a missing file as an empty store.
    /// Returns `Ok(0)` when `path` does not exist.
    ///
    /// # Errors
    ///
    /// As [`RowStore::load`] for files that exist but fail verification.
    pub fn load_if_present(&self, path: &Path) -> Result<u64, StoreError> {
        match self.load(path) {
            Err(StoreError::Io(err)) if err.kind() == io::ErrorKind::NotFound => Ok(0),
            other => other,
        }
    }

    /// Writes the store as a `rows.v1` file at `path`, atomically (see
    /// [`write_atomic`]). Returns the number of rows written. Output is
    /// deterministic for a given store content and touch ordering: rows
    /// are written coldest-touched first (ties by `(hash, key)`), cells
    /// by width, and saving never counts as a touch — two back-to-back
    /// saves produce identical bytes.
    ///
    /// # Errors
    ///
    /// Any I/O error creating, writing, syncing or renaming the file.
    pub fn save(&self, path: &Path) -> io::Result<u64> {
        self.save_capped(path, u64::MAX)
    }

    /// [`RowStore::save`] with a garbage-collection bound: when the
    /// serialized store would exceed `max_bytes`, the coldest-touched
    /// rows are dropped (from the *file* only — the resident store is
    /// untouched) until the file fits. The bound is strict: the written
    /// file is always `<= max_bytes`, even if that means writing a
    /// valid, empty envelope. Returns the number of rows written.
    ///
    /// # Errors
    ///
    /// Any I/O error creating, writing, syncing or renaming the file.
    pub fn save_capped(&self, path: &Path, max_bytes: u64) -> io::Result<u64> {
        // Snapshot rows (touch + cells) up front so a concurrently
        // growing row cannot desync the size accounting from the bytes
        // actually serialized.
        type RowSnapshot = (u64, u64, Vec<u8>, BTreeMap<u64, u64>);
        let rows: Vec<Arc<StoreRow>> = lock(&self.rows).values().flatten().cloned().collect();
        let mut snapshot: Vec<RowSnapshot> = rows
            .iter()
            .map(|row| {
                (
                    row.touch.load(Ordering::Relaxed),
                    row.hash,
                    row.key.clone(),
                    lock(&row.cells).clone(),
                )
            })
            .collect();
        drop(rows);
        // Coldest first; (hash, key) tiebreak keeps saves deterministic.
        snapshot.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));

        // Envelope overhead: magic + version + row count + checksum.
        let overhead = (MAGIC.len() + 1 + 8 + 8) as u64;
        let row_cost = |key: &Vec<u8>, cells: &BTreeMap<u64, u64>| {
            8 + 8 + key.len() as u64 + 8 + 16 * cells.len() as u64
        };
        let mut total = overhead
            + snapshot
                .iter()
                .map(|(_, _, k, c)| row_cost(k, c))
                .sum::<u64>();
        let mut first_kept = 0;
        while total > max_bytes && first_kept < snapshot.len() {
            let (_, _, key, cells) = &snapshot[first_kept];
            total -= row_cost(key, cells);
            first_kept += 1;
        }
        let kept = &snapshot[first_kept..];

        let bytes = seal_envelope(MAGIC, VERSION, |out| {
            push_u64(out, kept.len() as u64);
            for (_, hash, key, cells) in kept {
                push_u64(out, *hash);
                push_u64(out, key.len() as u64);
                out.extend_from_slice(key);
                push_u64(out, cells.len() as u64);
                for (&width, &time) in cells {
                    push_u64(out, width);
                    push_u64(out, time);
                }
            }
        });
        debug_assert!(bytes.len() as u64 <= max_bytes || kept.is_empty());
        write_atomic(path, &bytes)?;
        Ok(kept.len() as u64)
    }
}

/// Builds a checksummed envelope: `magic` and `version`, the payload
/// `build` appends, and a trailing FNV-1a of every preceding byte. The
/// counterpart of [`open_envelope`]; shared by `rows.v1` and the
/// service's `solutions.v1`.
pub fn seal_envelope(magic: &[u8; 7], version: u8, build: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(magic);
    bytes.push(version);
    build(&mut bytes);
    let checksum = fnv1a64(&bytes);
    push_u64(&mut bytes, checksum);
    bytes
}

/// Verifies an envelope's magic, version and trailing checksum, and
/// returns the payload slice between header and trailer.
///
/// # Errors
///
/// [`StoreError::Corrupt`] on a short file, wrong magic, unsupported
/// version, or checksum mismatch.
pub fn open_envelope<'a>(
    magic: &[u8; 7],
    version: u8,
    bytes: &'a [u8],
) -> Result<&'a [u8], StoreError> {
    let minimum = magic.len() + 1 + 8; // magic, version, checksum
    if bytes.len() < minimum {
        return Err(StoreError::Corrupt(format!(
            "file too short ({} bytes) for an envelope header",
            bytes.len()
        )));
    }
    if &bytes[..magic.len()] != magic {
        return Err(StoreError::Corrupt("bad magic".to_string()));
    }
    let found = bytes[magic.len()];
    if found != version {
        return Err(StoreError::Corrupt(format!(
            "unsupported format version {:?} (expected {:?})",
            char::from(found),
            char::from(version),
        )));
    }
    let (checked, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let actual = fnv1a64(checked);
    if stored != actual {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    Ok(&checked[magic.len() + 1..])
}

/// Writes `bytes` to `path` atomically: a sibling temporary file first,
/// renamed into place, so a concurrent reader (or a second writer racing
/// this one) observes a complete old or complete new file, never a torn
/// one.
///
/// # Errors
///
/// Any I/O error creating, writing, syncing or renaming the file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // The temp name must be unique per *call*, not just per process:
    // two in-process savers racing one path would otherwise rename
    // each other's half-written temp file into place.
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let temp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let written = (|| -> io::Result<()> {
        let mut file = fs::File::create(&temp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&temp, path)
    })();
    if written.is_err() {
        let _ = fs::remove_file(&temp);
    }
    written
}

/// Appends a little-endian `u64` — the envelope formats' only scalar
/// encoding.
pub fn push_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Strict bounds-checked reader over an envelope payload. Every read is
/// validated against the remaining byte count before slicing, so a
/// bit-flipped length field yields a typed error, never a panic.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    /// The next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| StoreError::Corrupt("truncated row data".to_string()))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// The next little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let raw = self.take(8)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }
}

/// Verifies and parses a whole `rows.v1` file. Pure: no store state is
/// touched, so callers can reject corrupt files with nothing to roll
/// back. Length fields are validated against the remaining byte count
/// *before* any allocation, so a bit-flipped count cannot balloon memory.
#[allow(clippy::type_complexity)]
fn parse_rows_file(bytes: &[u8]) -> Result<Vec<(u64, Vec<u8>, Vec<(u64, u64)>)>, StoreError> {
    let payload = open_envelope(MAGIC, VERSION, bytes)?;
    let mut cursor = Cursor::new(payload);
    let row_count = cursor.u64()?;
    let mut rows = Vec::new();
    for _ in 0..row_count {
        let hash = cursor.u64()?;
        let key_len = cursor.u64()?;
        let key_len = usize::try_from(key_len)
            .ok()
            .filter(|&len| len <= cursor.remaining())
            .ok_or_else(|| StoreError::Corrupt("key length exceeds file".to_string()))?;
        let key = cursor.take(key_len)?.to_vec();
        if fnv1a64(&key) != hash {
            return Err(StoreError::Corrupt(
                "row hash does not match its key".to_string(),
            ));
        }
        let cell_count = cursor.u64()?;
        let cell_count = usize::try_from(cell_count)
            .ok()
            .filter(|&count| {
                count
                    .checked_mul(16)
                    .is_some_and(|b| b <= cursor.remaining())
            })
            .ok_or_else(|| StoreError::Corrupt("cell count exceeds file".to_string()))?;
        let mut cells = Vec::with_capacity(cell_count);
        for _ in 0..cell_count {
            let width = cursor.u64()?;
            let time = cursor.u64()?;
            if width == 0 {
                return Err(StoreError::Corrupt("zero cell width".to_string()));
            }
            cells.push((width, time));
        }
        rows.push((hash, key, cells));
    }
    if cursor.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the last row",
            cursor.remaining()
        )));
    }
    Ok(rows)
}

// Poisoning is recovered, not propagated: every critical section above is
// a short map/tree mutation that cannot be observed half-done, and a
// panicking optimizer thread must not wedge the whole process's cache.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_soc_model::Module;

    fn shape(patterns: u64, chains: &[u64]) -> ModuleShape {
        let mut builder = Module::builder("m").patterns(patterns).inputs(2).outputs(2);
        for &chain in chains {
            builder = builder.scan_chain(chain);
        }
        ModuleShape::of(&builder.build())
    }

    #[test]
    fn equal_shapes_share_one_row() {
        let store = RowStore::new();
        let a = store.row_for_shape(&shape(7, &[3, 9]));
        let b = store.row_for_shape(&shape(7, &[9, 3]));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats().rows, 1);
        let c = store.row_for_shape(&shape(8, &[3, 9]));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.stats().rows, 2);
    }

    #[test]
    fn insert_reports_first_writer_and_get_serves_it() {
        let store = RowStore::new();
        let row = store.row_for_shape(&shape(7, &[3]));
        assert_eq!(row.get(4), None);
        assert!(row.insert(4, 99));
        assert!(!row.insert(4, 99));
        assert_eq!(row.get(4), Some(99));
        assert_eq!(row.len(), 1);
    }

    #[test]
    fn save_load_round_trips_and_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("soctest-rowstore-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.rows.v1");

        let store = RowStore::new();
        for (p, widths) in [(5u64, [1usize, 8]), (11, [3, 17])] {
            let row = store.row_for_shape(&shape(p, &[4, 2]));
            for w in widths {
                row.insert(w, p * w as u64);
            }
        }
        assert_eq!(store.save(&path).unwrap(), 2);
        let first = fs::read(&path).unwrap();
        assert_eq!(store.save(&path).unwrap(), 2);
        assert_eq!(
            first,
            fs::read(&path).unwrap(),
            "save must be deterministic"
        );

        let reloaded = RowStore::new();
        assert_eq!(reloaded.load(&path).unwrap(), 4);
        for (p, widths) in [(5u64, [1usize, 8]), (11, [3, 17])] {
            let row = reloaded.row_for_shape(&shape(p, &[4, 2]));
            for w in widths {
                assert_eq!(row.get(w), Some(p * w as u64));
            }
        }
        let stats = reloaded.stats();
        assert_eq!((stats.rows, stats.cells, stats.cells_loaded), (2, 4, 4));
        assert_eq!(stats.cells_computed, 0, "loading is not computing");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_capped_drops_coldest_rows_and_respects_the_bound() {
        let dir = std::env::temp_dir().join(format!("soctest-rowstore-cap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("capped.rows.v1");

        let store = RowStore::new();
        for p in [3u64, 5, 7] {
            let row = store.row_for_shape(&shape(p, &[4, 2]));
            row.insert(2, p);
            row.insert(4, 2 * p);
        }
        // Re-touch the p=3 and p=7 rows so p=5 is the coldest.
        store.row_for_shape(&shape(3, &[4, 2])).get(2);
        store.row_for_shape(&shape(7, &[4, 2])).get(2);

        let full = store.save(&path).unwrap();
        assert_eq!(full, 3);
        let full_len = fs::metadata(&path).unwrap().len();

        // A cap just below the full size must drop exactly the coldest.
        assert_eq!(store.save_capped(&path, full_len - 1).unwrap(), 2);
        assert!(fs::metadata(&path).unwrap().len() < full_len);
        let reloaded = RowStore::new();
        reloaded.load(&path).unwrap();
        assert_eq!(reloaded.stats().rows, 2);
        assert!(reloaded.row_for_shape(&shape(5, &[4, 2])).is_empty());
        assert_eq!(reloaded.row_for_shape(&shape(3, &[4, 2])).get(2), Some(3));
        assert_eq!(reloaded.row_for_shape(&shape(7, &[4, 2])).get(2), Some(7));

        // A tiny cap still writes a valid (empty) envelope.
        assert_eq!(store.save_capped(&path, 40).unwrap(), 0);
        assert!(fs::metadata(&path).unwrap().len() <= 40);
        let empty = RowStore::new();
        assert_eq!(empty.load(&path).unwrap(), 0);
        assert_eq!(empty.stats().rows, 0);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn touch_order_survives_a_save_load_cycle() {
        let dir =
            std::env::temp_dir().join(format!("soctest-rowstore-touch-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("touch.rows.v1");
        let again = dir.join("touch-again.rows.v1");

        let store = RowStore::new();
        for p in [3u64, 5, 7] {
            store.row_for_shape(&shape(p, &[4, 2])).insert(2, p);
        }
        // Deliberately scramble recency away from insertion order.
        store.row_for_shape(&shape(5, &[4, 2])).get(2);
        store.row_for_shape(&shape(3, &[4, 2])).get(2);
        store.save(&path).unwrap();

        // A fresh store that loads the file and saves it untouched must
        // reproduce the same bytes: load replays the file's recency.
        let reloaded = RowStore::new();
        reloaded.load(&path).unwrap();
        reloaded.save(&again).unwrap();
        assert_eq!(
            fs::read(&path).unwrap(),
            fs::read(&again).unwrap(),
            "row order (recency) must survive a round trip"
        );
        fs::remove_file(&path).unwrap();
        fs::remove_file(&again).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let store = RowStore::new();
        let path = std::env::temp_dir().join("soctest-rowstore-definitely-missing.rows.v1");
        assert_eq!(store.load_if_present(&path).unwrap(), 0);
        assert!(matches!(store.load(&path), Err(StoreError::Io(_))));
    }
}
