//! Explicit test schedules derived from a test architecture.
//!
//! A [`TestArchitecture`] fixes which modules share a channel group; the
//! schedule spells out *when* each module is tested: modules on the same
//! group run back-to-back, groups run in parallel. The schedule is what an
//! ATE test program would be generated from, and it gives the tests an
//! independent way to check the architecture-level fill bookkeeping.

use crate::architecture::TestArchitecture;
use crate::timetable::TimeLookup;
use serde::{Deserialize, Serialize};
use soctest_soc_model::ModuleId;
use std::fmt;

/// One scheduled module test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The module under test.
    pub module: ModuleId,
    /// Channel group (TAM) index the module is tested on.
    pub group: usize,
    /// TAM width the module's wrapper uses.
    pub width: usize,
    /// Start time in test clock cycles.
    pub start_cycle: u64,
    /// End time in test clock cycles (exclusive).
    pub end_cycle: u64,
}

impl ScheduleEntry {
    /// Duration of this module test in cycles.
    pub fn duration(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// A complete SOC test schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestSchedule {
    /// All scheduled module tests, ordered by group then start time.
    pub entries: Vec<ScheduleEntry>,
}

impl TestSchedule {
    /// Builds the schedule implied by `architecture`: modules of each group
    /// run serially in their assignment order.
    pub fn from_architecture<T: TimeLookup + ?Sized>(
        architecture: &TestArchitecture,
        table: &T,
    ) -> Self {
        let mut entries = Vec::new();
        for (group_idx, group) in architecture.groups.iter().enumerate() {
            let mut cursor = 0u64;
            for &module in &group.modules {
                let duration = table.time(module, group.width);
                entries.push(ScheduleEntry {
                    module,
                    group: group_idx,
                    width: group.width,
                    start_cycle: cursor,
                    end_cycle: cursor + duration,
                });
                cursor += duration;
            }
        }
        TestSchedule { entries }
    }

    /// The schedule makespan: the cycle at which the last module finishes.
    pub fn makespan(&self) -> u64 {
        self.entries.iter().map(|e| e.end_cycle).max().unwrap_or(0)
    }

    /// Entries belonging to one channel group, in execution order.
    pub fn group_entries(&self, group: usize) -> Vec<&ScheduleEntry> {
        self.entries.iter().filter(|e| e.group == group).collect()
    }

    /// Checks that no two modules overlap on the same group.
    pub fn is_consistent(&self) -> bool {
        let groups: std::collections::BTreeSet<usize> =
            self.entries.iter().map(|e| e.group).collect();
        for group in groups {
            let mut entries = self.group_entries(group);
            entries.sort_by_key(|e| e.start_cycle);
            for pair in entries.windows(2) {
                if pair[1].start_cycle < pair[0].end_cycle {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for TestSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule: {} entries, makespan {} cycles",
            self.entries.len(),
            self.makespan()
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "  group {:2} w={:3}  {:>10} .. {:>10}  {}",
                e.group, e.width, e.start_cycle, e.end_cycle, e.module
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step1::design_minimal_architecture;
    use crate::timetable::TimeTable;
    use soctest_ate::AteSpec;
    use soctest_soc_model::benchmarks::d695;

    fn schedule() -> (TestArchitecture, TestSchedule, TimeTable) {
        let soc = d695();
        let ate = AteSpec::new(128, 64 * 1024, 5.0e6);
        let arch = design_minimal_architecture(&soc, &ate).unwrap();
        let table = TimeTable::build(&soc, 64);
        let sched = TestSchedule::from_architecture(&arch, &table);
        (arch, sched, table)
    }

    #[test]
    fn makespan_equals_architecture_test_time() {
        let (arch, sched, _) = schedule();
        assert_eq!(sched.makespan(), arch.test_time_cycles());
    }

    #[test]
    fn every_module_appears_exactly_once() {
        let (arch, sched, _) = schedule();
        assert_eq!(sched.entries.len(), arch.num_modules());
        let mut modules: Vec<ModuleId> = sched.entries.iter().map(|e| e.module).collect();
        modules.sort_unstable();
        assert_eq!(modules, arch.assigned_modules());
    }

    #[test]
    fn schedule_has_no_overlap_within_groups() {
        let (_, sched, _) = schedule();
        assert!(sched.is_consistent());
    }

    #[test]
    fn entry_durations_match_time_table() {
        let (_, sched, table) = schedule();
        for e in &sched.entries {
            assert_eq!(e.duration(), table.time(e.module, e.width));
        }
    }

    #[test]
    fn group_entries_are_back_to_back() {
        let (arch, sched, _) = schedule();
        for g in 0..arch.groups.len() {
            let entries = sched.group_entries(g);
            for pair in entries.windows(2) {
                assert_eq!(pair[1].start_cycle, pair[0].end_cycle);
            }
        }
    }

    #[test]
    fn inconsistent_schedule_is_detected() {
        let bad = TestSchedule {
            entries: vec![
                ScheduleEntry {
                    module: ModuleId(0),
                    group: 0,
                    width: 1,
                    start_cycle: 0,
                    end_cycle: 100,
                },
                ScheduleEntry {
                    module: ModuleId(1),
                    group: 0,
                    width: 1,
                    start_cycle: 50,
                    end_cycle: 150,
                },
            ],
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn empty_schedule_is_consistent() {
        let empty = TestSchedule { entries: vec![] };
        assert!(empty.is_consistent());
        assert_eq!(empty.makespan(), 0);
    }

    #[test]
    fn display_lists_entries() {
        let (_, sched, _) = schedule();
        let text = sched.to_string();
        assert!(text.contains("makespan"));
        assert!(text.lines().count() > sched.entries.len());
    }
}
