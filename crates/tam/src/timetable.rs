//! Precomputed module test times per TAM width.
//!
//! Every architecture-design algorithm repeatedly asks "how long does module
//! `m` test at width `w`?". Answering that question from scratch means
//! running the COMBINE wrapper design, which is cheap but not free; during
//! Step 1 / Step 2 and the parameter sweeps of Section 7 the same
//! `(module, width)` pairs are evaluated thousands of times. [`TimeTable`]
//! computes the whole table once per SOC and serves lookups in O(1).
//!
//! Construction goes through the allocation-free row kernel
//! ([`soctest_wrapper::row::RowKernel`]) and is parallelised over modules
//! with rayon's `map_init` (one scratch kernel per runner task) on the
//! persistent work-stealing pool — so a build triggered from inside an
//! already-parallel engine batch nests onto the same fixed worker set
//! instead of spawning threads or running serially. Results are collected
//! in module order, so parallel builds are bit-identical to
//! [`TimeTable::build_sequential`] at any thread count;
//! [`TimeTable::build_reference`] keeps the original full-fidelity
//! per-(module, width) wrapper-design loop as a cross-check and benchmark
//! baseline.

use rayon::prelude::*;
use soctest_soc_model::{ModuleId, Soc};
use soctest_wrapper::combine::test_time_at_width;
use soctest_wrapper::row::RowKernel;

/// The widest TAM an ATE channel budget can drive: one unit of width costs
/// **two** channels (one stimulus, one response), so `channels / 2`, with a
/// floor of 1 so that a table covering the budget is never zero-width.
///
/// This is the width a fresh [`TimeTable`] / [`crate::LazyTimeTable`] must
/// cover for algorithms running against `channels` ATE channels; every
/// layer (Step 1, the optimizer, the sweeps, the benchmarks) sizes its
/// tables through this one helper so the channels-to-width convention
/// lives in exactly one place.
pub fn max_tam_width(channels: usize) -> usize {
    (channels / 2).max(1)
}

/// The widest *total* TAM width an algorithm may allocate when `channels`
/// ATE channels are available and lookups go through `table`: the channel
/// budget's width ([`max_tam_width`] without the floor), clamped to the
/// widths the table actually covers.
///
/// A zero result means the budget cannot drive even a single wrapper chain
/// — callers report `InsufficientChannels` rather than probing width 0.
pub fn clamped_tam_width<T: TimeLookup + ?Sized>(table: &T, channels: usize) -> usize {
    (channels / 2).min(table.max_width())
}

/// Common lookup interface over module test-time tables.
///
/// Every architecture-design algorithm in this workspace only ever *reads*
/// `(module, width) → cycles`; this trait lets them accept either the
/// eagerly precomputed [`TimeTable`] or the demand-driven
/// [`crate::LazyTimeTable`] (which materialises only the cells an optimizer
/// actually probes) without duplicating any algorithm code. The two
/// implementations are bit-identical on every probed entry
/// (`crates/tam/tests/lazy_equivalence.rs`).
pub trait TimeLookup {
    /// Number of modules covered by the table.
    fn num_modules(&self) -> usize;

    /// The maximum width covered by the table.
    fn max_width(&self) -> usize;

    /// Test time of `module` at `width` wrapper chains.
    ///
    /// # Panics
    ///
    /// Panics if `module` or `width` is out of range.
    fn time(&self, module: ModuleId, width: usize) -> u64;

    /// The smallest width at which `module` meets `max_cycles`, or `None`
    /// if even the table's maximum width is insufficient.
    ///
    /// The default implementation binary-searches over `time`, probing
    /// O(log max_width) widths — sound because the test-time row is
    /// non-increasing in width (proven in the *Width monotonicity* section
    /// of [`soctest_wrapper::row`]'s module docs, cross-checked by
    /// `crates/tam/tests/proptest_min_width.rs`).
    fn min_width_for_time(&self, module: ModuleId, max_cycles: u64) -> Option<usize> {
        // Lower-bound search: first width whose time fits the budget.
        let mut lo = 1usize;
        let mut hi = self.max_width() + 1;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.time(module, mid) <= max_cycles {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        (lo <= self.max_width()).then_some(lo)
    }

    /// Sum of the test times of `modules` when each is wrapped at `width`.
    ///
    /// This is the vector-memory fill of a channel group of that width
    /// holding those modules (they are tested serially on the group).
    ///
    /// # Panics
    ///
    /// Panics if the fill overflows `u64`: individual times are in-domain
    /// by construction (`fit_u64` in the row kernel), but a serial group
    /// of many huge modules can exceed the domain, and a silent wrap here
    /// would make an over-capacity group look nearly empty to Step 1's
    /// depth checks.
    fn group_fill(&self, modules: &[ModuleId], width: usize) -> u64 {
        modules.iter().fold(0u64, |fill, &m| {
            fill.checked_add(self.time(m, width))
                .expect("channel-group fill overflows u64")
        })
    }
}

/// Precomputed test times: `time(module, width)` for every module of an SOC
/// and every width from 1 to a configured maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeTable {
    /// `times[module][width - 1]` = test time in cycles.
    times: Vec<Vec<u64>>,
    max_width: usize,
}

impl TimeTable {
    /// Builds the table for `soc`, covering widths `1..=max_width`.
    ///
    /// Rows are computed by the fast row kernel and modules are evaluated
    /// in parallel; the result is bit-identical to
    /// [`TimeTable::build_sequential`] and to the full-fidelity
    /// [`TimeTable::build_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub fn build(soc: &Soc, max_width: usize) -> Self {
        assert!(max_width > 0, "max_width must be at least 1");
        let times = soc
            .modules()
            .par_iter()
            .map_init(RowKernel::new, |kernel, module| {
                kernel.compute(module, max_width)
            })
            .collect();
        TimeTable { times, max_width }
    }

    /// Single-threaded row-kernel build (the same numbers as
    /// [`TimeTable::build`], used by determinism tests).
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub fn build_sequential(soc: &Soc, max_width: usize) -> Self {
        assert!(max_width > 0, "max_width must be at least 1");
        let mut kernel = RowKernel::new();
        let times = soc
            .modules()
            .iter()
            .map(|module| kernel.compute(module, max_width))
            .collect();
        TimeTable { times, max_width }
    }

    /// Full-fidelity build running the complete COMBINE wrapper design for
    /// every `(module, width)` pair — the original (slow) construction,
    /// kept as the validation cross-check and the benchmark baseline for
    /// the row kernel.
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub fn build_reference(soc: &Soc, max_width: usize) -> Self {
        assert!(max_width > 0, "max_width must be at least 1");
        let times = soc
            .modules()
            .iter()
            .map(|module| {
                (1..=max_width)
                    .map(|w| test_time_at_width(module, w))
                    .collect()
            })
            .collect();
        TimeTable { times, max_width }
    }

    /// The maximum width covered by the table.
    pub fn max_width(&self) -> usize {
        self.max_width
    }

    /// Number of modules covered by the table.
    pub fn num_modules(&self) -> usize {
        self.times.len()
    }

    /// Test time of `module` at `width` wrapper chains.
    ///
    /// # Panics
    ///
    /// Panics if `module` or `width` is out of range.
    pub fn time(&self, module: ModuleId, width: usize) -> u64 {
        assert!(
            width >= 1 && width <= self.max_width,
            "width {width} out of range"
        );
        self.times[module.0][width - 1]
    }

    /// The smallest width at which `module` meets `max_cycles`, or `None`
    /// if even the table's maximum width is insufficient.
    pub fn min_width_for_time(&self, module: ModuleId, max_cycles: u64) -> Option<usize> {
        let row = &self.times[module.0];
        // Times are non-increasing in width — a theorem, not an assumption:
        // see the *Width monotonicity* proof in `soctest_wrapper::row`'s
        // module docs (cross-checked by tests/proptest_min_width.rs). The
        // infeasible prefix therefore ends at the first feasible index.
        let first_feasible = row.partition_point(|&t| t > max_cycles);
        (first_feasible < row.len()).then_some(first_feasible + 1)
    }

    /// Sum of the test times of `modules` when each is wrapped at `width`.
    ///
    /// This is the vector-memory fill of a channel group of that width
    /// holding those modules (they are tested serially on the group).
    ///
    /// # Panics
    ///
    /// Panics if the fill overflows `u64` (see [`TimeLookup::group_fill`]).
    pub fn group_fill(&self, modules: &[ModuleId], width: usize) -> u64 {
        modules.iter().fold(0u64, |fill, &m| {
            fill.checked_add(self.time(m, width))
                .expect("channel-group fill overflows u64")
        })
    }

    /// Minimal "test data area" (width x time, in channel-cycles of wrapper
    /// chains) of a module over all widths in the table. Used by the
    /// theoretical lower bound on the channel count.
    pub fn min_area(&self, module: ModuleId) -> u64 {
        self.times[module.0]
            .iter()
            .enumerate()
            .map(|(i, &t)| (i as u64 + 1) * t)
            .min()
            .expect("max_width >= 1")
    }
}

impl TimeLookup for TimeTable {
    fn num_modules(&self) -> usize {
        TimeTable::num_modules(self)
    }

    fn max_width(&self) -> usize {
        TimeTable::max_width(self)
    }

    fn time(&self, module: ModuleId, width: usize) -> u64 {
        TimeTable::time(self, module, width)
    }

    fn min_width_for_time(&self, module: ModuleId, max_cycles: u64) -> Option<usize> {
        // The in-memory row makes `partition_point` cheaper than probing.
        TimeTable::min_width_for_time(self, module, max_cycles)
    }

    fn group_fill(&self, modules: &[ModuleId], width: usize) -> u64 {
        TimeTable::group_fill(self, modules, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_soc_model::{benchmarks::d695, Module, ModuleId, Soc};

    fn table() -> (Soc, TimeTable) {
        let soc = d695();
        let table = TimeTable::build(&soc, 24);
        (soc, table)
    }

    #[test]
    fn table_matches_direct_evaluation() {
        let (soc, table) = table();
        for (id, module) in soc.iter() {
            for width in [1usize, 3, 8, 24] {
                assert_eq!(table.time(id, width), test_time_at_width(module, width));
            }
        }
    }

    #[test]
    fn all_build_paths_agree() {
        let soc = d695();
        let parallel = TimeTable::build(&soc, 32);
        let sequential = TimeTable::build_sequential(&soc, 32);
        let reference = TimeTable::build_reference(&soc, 32);
        assert_eq!(parallel, sequential);
        assert_eq!(parallel, reference);
    }

    #[test]
    fn min_width_matches_linear_scan() {
        let (soc, table) = table();
        for (id, module) in soc.iter() {
            let budget = test_time_at_width(module, 5);
            let expected = (1..=24).find(|&w| test_time_at_width(module, w) <= budget);
            assert_eq!(table.min_width_for_time(id, budget), expected);
        }
    }

    #[test]
    fn min_width_none_when_infeasible() {
        let (_, table) = table();
        assert_eq!(table.min_width_for_time(ModuleId(3), 1), None);
    }

    #[test]
    fn trait_default_binary_search_matches_partition_point() {
        // The trait's default probing search (what LazyTimeTable uses) and
        // the eager partition_point must agree on every budget.
        struct Probing<'a>(&'a TimeTable);
        impl TimeLookup for Probing<'_> {
            fn num_modules(&self) -> usize {
                self.0.num_modules()
            }
            fn max_width(&self) -> usize {
                self.0.max_width()
            }
            fn time(&self, module: ModuleId, width: usize) -> u64 {
                self.0.time(module, width)
            }
        }
        let (soc, table) = table();
        let probing = Probing(&table);
        for (id, _) in soc.iter() {
            for width in 1..=24usize {
                let budget = table.time(id, width);
                assert_eq!(
                    probing.min_width_for_time(id, budget),
                    table.min_width_for_time(id, budget)
                );
                assert_eq!(
                    probing.min_width_for_time(id, budget.saturating_sub(1)),
                    table.min_width_for_time(id, budget.saturating_sub(1))
                );
            }
            assert_eq!(probing.min_width_for_time(id, 0), None);
            assert_eq!(probing.min_width_for_time(id, u64::MAX), Some(1));
        }
    }

    #[test]
    #[should_panic(expected = "channel-group fill overflows u64")]
    fn overflowing_group_fill_panics_instead_of_wrapping() {
        // Two modules whose individual test times are in-domain but whose
        // serial group fill exceeds u64: the fill must fail loudly, not
        // wrap to a tiny value that passes the depth checks.
        let huge = |name: &str| Module::builder(name).patterns(u64::MAX / 2 + 1).build();
        let soc = Soc::from_modules("huge_pair", vec![huge("a"), huge("b")]);
        let table = TimeTable::build(&soc, 2);
        let _ = table.group_fill(&[ModuleId(0), ModuleId(1)], 1);
    }

    #[test]
    fn group_fill_is_sum_of_times() {
        let (_, table) = table();
        let ids = [ModuleId(0), ModuleId(4), ModuleId(9)];
        let expected: u64 = ids.iter().map(|&id| table.time(id, 6)).sum();
        assert_eq!(table.group_fill(&ids, 6), expected);
        assert_eq!(table.group_fill(&[], 6), 0);
    }

    #[test]
    fn min_area_is_no_larger_than_any_width_area() {
        let (_, table) = table();
        for m in 0..table.num_modules() {
            let id = ModuleId(m);
            let min_area = table.min_area(id);
            for w in 1..=24 {
                assert!(min_area <= w as u64 * table.time(id, w));
            }
        }
    }

    #[test]
    fn dimensions_are_reported() {
        let (soc, table) = table();
        assert_eq!(table.num_modules(), soc.num_modules());
        assert_eq!(table.max_width(), 24);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn width_out_of_range_panics() {
        let (_, table) = table();
        let _ = table.time(ModuleId(0), 25);
    }

    #[test]
    #[should_panic(expected = "max_width")]
    fn zero_max_width_panics() {
        let soc = Soc::from_modules(
            "x",
            vec![Module::builder("m").patterns(1).inputs(1).build()],
        );
        let _ = TimeTable::build(&soc, 0);
    }

    #[test]
    fn max_tam_width_is_half_the_channels_with_a_floor_of_one() {
        assert_eq!(max_tam_width(0), 1);
        assert_eq!(max_tam_width(1), 1);
        assert_eq!(max_tam_width(2), 1);
        assert_eq!(max_tam_width(3), 1);
        assert_eq!(max_tam_width(256), 128);
        assert_eq!(max_tam_width(513), 256);
    }

    #[test]
    fn clamped_tam_width_respects_both_budget_and_table() {
        let (_, table) = table(); // max_width = 24
        assert_eq!(clamped_tam_width(&table, 256), 24); // table binds
        assert_eq!(clamped_tam_width(&table, 16), 8); // budget binds
        assert_eq!(clamped_tam_width(&table, 1), 0); // too few channels
        assert_eq!(clamped_tam_width(&table, 0), 0);
    }
}
