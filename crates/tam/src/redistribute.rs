//! Channel redistribution (the inner move of Step 2).
//!
//! When Step 2 of the paper gives up one multi-site, the ATE channels of the
//! abandoned site become available to the remaining sites. Per site, the
//! freed channels are handed out one wrapper chain (two channels) at a time,
//! always to the channel group that is currently the fullest — the group
//! that determines the SOC test time — and that group's modules are
//! re-wrapped at the new width.

use crate::architecture::TestArchitecture;
use crate::timetable::TimeLookup;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a redistribution: the widened architecture plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redistribution {
    /// The widened architecture.
    pub architecture: TestArchitecture,
    /// Wrapper chains actually handed out (may be less than requested when
    /// no group benefits from further widening).
    pub width_added: usize,
}

/// Widens `architecture` by up to `extra_width` wrapper chains, one at a
/// time, always growing the currently fullest group, and returns the
/// widened architecture.
///
/// Handing a chain to a group only makes sense when the group's fill
/// actually drops (its modules may already be at their Pareto floor); when
/// no group can improve any further, the remaining chains are left unused
/// and reported through [`Redistribution::width_added`].
///
/// The table's maximum width caps how far a single group can grow.
///
/// The fullest group is tracked with a max-heap (ties broken towards the
/// lower group index, matching a stable descending sort), so handing out a
/// chain costs O(log groups) instead of re-sorting all groups per chain. A
/// group that fails to improve is dropped from the heap permanently: its
/// width — the only state its improvability depends on — can never change
/// again, so re-examining it (as the sort-per-chain formulation did) can
/// never change the outcome.
pub fn redistribute_extra_width<T: TimeLookup + ?Sized>(
    architecture: &TestArchitecture,
    table: &T,
    extra_width: usize,
) -> Redistribution {
    let mut arch = architecture.clone();
    let mut added = 0usize;
    // Max-heap keyed by (fill, lowest index first on equal fills).
    let mut heap: BinaryHeap<(u64, Reverse<usize>)> = arch
        .groups
        .iter()
        .enumerate()
        .map(|(g_idx, group)| (group.fill_cycles, Reverse(g_idx)))
        .collect();
    while added < extra_width {
        let Some((fill, Reverse(g_idx))) = heap.pop() else {
            break; // every group is at its Pareto floor or width cap
        };
        let group = &arch.groups[g_idx];
        debug_assert_eq!(fill, group.fill_cycles, "heap key must track group fill");
        if group.width + 1 > table.max_width() {
            continue;
        }
        let new_fill = table.group_fill(&group.modules, group.width + 1);
        if new_fill < fill {
            let group = &mut arch.groups[g_idx];
            group.width += 1;
            group.fill_cycles = new_fill;
            added += 1;
            heap.push((new_fill, Reverse(g_idx)));
        }
    }
    Redistribution {
        architecture: arch,
        width_added: added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step1::design_minimal_architecture;
    use crate::timetable::TimeTable;
    use soctest_ate::AteSpec;
    use soctest_soc_model::benchmarks::{d695, p93791};

    fn base() -> (TimeTable, TestArchitecture, u64) {
        let soc = d695();
        let depth = 64 * 1024;
        let ate = AteSpec::new(256, depth, 5.0e6);
        let arch = design_minimal_architecture(&soc, &ate).unwrap();
        let table = TimeTable::build(&soc, 128);
        (table, arch, depth)
    }

    #[test]
    fn redistribution_never_increases_test_time() {
        let (table, arch, _) = base();
        let mut prev = arch.test_time_cycles();
        for extra in [1usize, 2, 4, 8, 16] {
            let result = redistribute_extra_width(&arch, &table, extra);
            let t = result.architecture.test_time_cycles();
            assert!(t <= prev, "extra {extra}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn redistribution_adds_at_most_the_requested_width() {
        let (table, arch, _) = base();
        let before = arch.total_width();
        let result = redistribute_extra_width(&arch, &table, 6);
        assert!(result.width_added <= 6);
        assert_eq!(
            result.architecture.total_width(),
            before + result.width_added
        );
    }

    #[test]
    fn redistribution_keeps_module_assignment() {
        let (table, arch, _) = base();
        let result = redistribute_extra_width(&arch, &table, 10);
        assert_eq!(
            result.architecture.assigned_modules(),
            arch.assigned_modules()
        );
        assert_eq!(result.architecture.groups.len(), arch.groups.len());
    }

    #[test]
    fn redistribution_still_fits_the_depth() {
        let (table, arch, depth) = base();
        let result = redistribute_extra_width(&arch, &table, 20);
        assert!(result.architecture.fits(depth));
    }

    #[test]
    fn zero_extra_width_is_identity() {
        let (table, arch, _) = base();
        let result = redistribute_extra_width(&arch, &table, 0);
        assert_eq!(result.architecture, arch);
        assert_eq!(result.width_added, 0);
    }

    #[test]
    fn redistribution_saturates_when_nothing_improves() {
        let (table, arch, _) = base();
        // Request an absurd amount of width; the algorithm must stop once
        // every group hits its Pareto floor (or the table's width cap).
        let result = redistribute_extra_width(&arch, &table, 10_000);
        assert!(result.width_added < 10_000);
        // A second pass adds nothing more.
        let again = redistribute_extra_width(&result.architecture, &table, 10);
        assert_eq!(again.width_added, 0);
    }

    #[test]
    fn large_soc_redistribution_reduces_test_time() {
        let soc = p93791();
        let depth = 1_000_000;
        let ate = AteSpec::new(512, depth, 5.0e6);
        let arch = design_minimal_architecture(&soc, &ate).unwrap();
        let table = TimeTable::build(&soc, 256);
        let result = redistribute_extra_width(&arch, &table, 16);
        assert!(result.architecture.test_time_cycles() < arch.test_time_cycles());
    }
}
