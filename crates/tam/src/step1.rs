//! Step 1 of the paper's two-step algorithm: channel-count minimisation.
//!
//! Step 1 determines the smallest (even) number of ATE channels `k` on which
//! the complete SOC test fits within the per-channel vector-memory depth
//! `D`, and secondarily minimises the actual memory fill (which equals the
//! SOC test application time). It proceeds greedily (Section 6, Figure 4):
//!
//! 1. compute, for every module, the minimum width at which its own test
//!    meets the depth limit; abort if some module cannot meet it at all;
//! 2. process the modules in order of decreasing minimum width;
//! 3. try to place the module on an existing channel group without
//!    violating the depth; among the feasible groups pick the one that ends
//!    up with the smallest fill;
//! 4. if no group can take the module, consider (a) opening a new group at
//!    the module's minimum width, or (b) widening one existing group just
//!    enough for the module to fit, and pick whichever alternative leaves
//!    the most free vector memory over all used channels.

use crate::architecture::{ChannelGroup, TestArchitecture};
use crate::error::TamError;
use crate::lazy::LazyTimeTable;
use crate::timetable::{clamped_tam_width, max_tam_width, TimeLookup};
use soctest_ate::AteSpec;
use soctest_soc_model::{ModuleId, Soc};

/// Designs the channel-minimal test architecture for `soc` on `ate`
/// (Step 1 of the paper).
///
/// Builds a fresh [`LazyTimeTable`] — a one-shot design only probes a
/// handful of widths per module, so the demand-driven table wins over an
/// eager build. When running sweeps, prefer [`design_with_table`] and
/// share one table.
///
/// # Errors
///
/// * [`TamError::EmptySoc`] if the SOC has no modules,
/// * [`TamError::ModuleInfeasible`] if a module cannot meet the ATE's
///   vector-memory depth at any width,
/// * [`TamError::InsufficientChannels`] if no assignment fits within the
///   ATE's channel count.
pub fn design_minimal_architecture(soc: &Soc, ate: &AteSpec) -> Result<TestArchitecture, TamError> {
    let table = LazyTimeTable::new(soc, max_tam_width(ate.channels));
    design_with_table(&table, ate.channels, ate.vector_memory_depth)
}

/// Step 1 on a prebuilt table (eager [`crate::TimeTable`] or
/// [`LazyTimeTable`] — any [`TimeLookup`]), with an explicit channel budget
/// and memory depth.
///
/// `channels` is the number of ATE channels available to a *single* SOC; the
/// resulting architecture's [`TestArchitecture::total_channels`] never
/// exceeds it.
///
/// # Errors
///
/// See [`design_minimal_architecture`].
pub fn design_with_table<T: TimeLookup + ?Sized>(
    table: &T,
    channels: usize,
    depth: u64,
) -> Result<TestArchitecture, TamError> {
    if table.num_modules() == 0 {
        return Err(TamError::EmptySoc);
    }
    let max_total_width = clamped_tam_width(table, channels);
    if max_total_width == 0 {
        return Err(TamError::InsufficientChannels {
            available_channels: channels,
        });
    }

    // Minimum width per module.
    let mut min_widths = Vec::with_capacity(table.num_modules());
    for m in 0..table.num_modules() {
        let id = ModuleId(m);
        match table.min_width_for_time(id, depth) {
            Some(w) if w <= max_total_width => min_widths.push((id, w)),
            _ => {
                return Err(TamError::ModuleInfeasible {
                    module: format!("{id}"),
                    depth,
                    max_width: max_total_width,
                })
            }
        }
    }

    // Decreasing minimum width; ties broken by decreasing test time at that
    // width (place the bulkiest modules first), then by id for determinism.
    min_widths.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| table.time(b.0, b.1).cmp(&table.time(a.0, a.1)))
            .then_with(|| a.0.cmp(&b.0))
    });

    let mut groups: Vec<ChannelGroup> = Vec::new();
    for &(id, w_min) in &min_widths {
        if try_place_in_existing_group(table, &mut groups, id, depth) {
            continue;
        }
        place_with_new_capacity(
            table,
            &mut groups,
            id,
            w_min,
            depth,
            max_total_width,
            channels,
        )?;
    }

    Ok(TestArchitecture::new(groups))
}

/// Tries to add `id` to an existing group without widening anything.
/// Returns true on success. Among the feasible groups the one with the
/// smallest resulting fill is chosen.
fn try_place_in_existing_group<T: TimeLookup + ?Sized>(
    table: &T,
    groups: &mut [ChannelGroup],
    id: ModuleId,
    depth: u64,
) -> bool {
    let mut best: Option<(usize, u64)> = None;
    for (g_idx, group) in groups.iter().enumerate() {
        let new_fill = group
            .fill_cycles
            .checked_add(table.time(id, group.width))
            .expect("channel-group fill overflows u64");
        if new_fill <= depth {
            match best {
                Some((_, fill)) if fill <= new_fill => {}
                _ => best = Some((g_idx, new_fill)),
            }
        }
    }
    if let Some((g_idx, new_fill)) = best {
        groups[g_idx].modules.push(id);
        groups[g_idx].fill_cycles = new_fill;
        true
    } else {
        false
    }
}

/// Places `id` by spending additional channels, following Figure 4 of the
/// paper: every alternative adds exactly the module's minimum width
/// `w_min` — either as a brand-new group (alternative *i*) or appended to
/// one of the existing groups (alternatives *ii*, *iii*, ...). All
/// alternatives therefore cost the same number of ATE channels, and the one
/// that leaves the most free vector memory over all used channels (i.e. the
/// smallest total fill) is selected.
///
/// Alternatives are scored by the free-memory *delta* of the one group each
/// of them changes — the untouched groups contribute identically to every
/// alternative, so they cancel out of the comparison. This avoids the
/// O(modules · groups²) candidate clones of the naive formulation (clone
/// the whole `Vec<ChannelGroup>` per alternative, re-sum every group) while
/// selecting exactly the same alternative; only the winner is applied, in
/// place.
fn place_with_new_capacity<T: TimeLookup + ?Sized>(
    table: &T,
    groups: &mut Vec<ChannelGroup>,
    id: ModuleId,
    w_min: usize,
    depth: u64,
    max_total_width: usize,
    channels: usize,
) -> Result<(), TamError> {
    let used_width: usize = groups.iter().map(|g| g.width).sum();
    if used_width + w_min > max_total_width {
        return Err(TamError::InsufficientChannels {
            available_channels: channels,
        });
    }

    // Free memory contributed by a group of `width` and `fill` (in
    // channel-cycles); i128 so deltas can go negative without wrapping.
    let contribution =
        |width: usize, fill: u64| depth.saturating_sub(fill) as i128 * (2 * width) as i128;

    // Alternative (i): open a new group at the module's minimum width.
    // Its delta is the whole contribution of the new group.
    let new_group_fill = table.time(id, w_min);
    let mut best_delta = contribution(w_min, new_group_fill);
    let mut best_widened: Option<(usize, u64)> = None; // (group index, new fill)

    // Alternatives (ii..): widen one existing group by exactly `w_min` and
    // absorb the module there, when that meets the depth. The delta is the
    // widened group's contribution minus its current one.
    for (g_idx, group) in groups.iter().enumerate() {
        let new_width = group.width + w_min;
        if new_width > table.max_width() {
            continue;
        }
        let new_fill = table
            .group_fill(&group.modules, new_width)
            .checked_add(table.time(id, new_width))
            .expect("channel-group fill overflows u64");
        if new_fill > depth {
            continue;
        }
        let delta =
            contribution(new_width, new_fill) - contribution(group.width, group.fill_cycles);
        if delta > best_delta {
            best_delta = delta;
            best_widened = Some((g_idx, new_fill));
        }
    }

    match best_widened {
        None => groups.push(ChannelGroup::new(w_min, vec![id], table)),
        Some((g_idx, new_fill)) => {
            let group = &mut groups[g_idx];
            group.width += w_min;
            group.modules.push(id);
            group.fill_cycles = new_fill;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timetable::TimeTable;
    use soctest_soc_model::benchmarks::{d695, p22810, p34392, p93791};
    use soctest_soc_model::{Module, Soc};

    fn check_architecture(arch: &TestArchitecture, soc: &Soc, channels: usize, depth: u64) {
        // Every module assigned exactly once.
        let assigned = arch.assigned_modules();
        let expected: Vec<ModuleId> = soc.module_ids().collect();
        assert_eq!(
            assigned, expected,
            "every module must be assigned exactly once"
        );
        // Channel budget respected, channel count even.
        assert!(arch.total_channels() <= channels);
        assert_eq!(arch.total_channels() % 2, 0);
        // Memory depth respected.
        assert!(
            arch.fits(depth),
            "fill {} > depth {depth}",
            arch.test_time_cycles()
        );
    }

    #[test]
    fn d695_fits_published_operating_points() {
        let soc = d695();
        // Table 1 of the paper: at 48K depth d695 needs k=28 channels; at
        // 128K it needs k=12. Allow a small slack around the published
        // points since the benchmark data here is a reconstruction.
        let cases = [(48 * 1024, 28usize), (64 * 1024, 22), (128 * 1024, 12)];
        for (depth, expected_k) in cases {
            let ate = AteSpec::new(256, depth, 5.0e6);
            let arch = design_minimal_architecture(&soc, &ate).unwrap();
            check_architecture(&arch, &soc, 256, depth);
            let k = arch.total_channels();
            assert!(
                k as i64 - expected_k as i64 <= 4 && expected_k as i64 - (k as i64) <= 4,
                "depth {depth}: got k={k}, paper k={expected_k}"
            );
        }
    }

    #[test]
    fn all_itc02_benchmarks_produce_valid_architectures() {
        let cases: [(Soc, u64); 4] = [
            (d695(), 64 * 1024),
            (p22810(), 512 * 1024),
            (p34392(), 1024 * 1024),
            (p93791(), 2 * 1024 * 1024),
        ];
        for (soc, depth) in cases {
            let ate = AteSpec::new(512, depth, 5.0e6);
            let arch = design_minimal_architecture(&soc, &ate)
                .unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
            check_architecture(&arch, &soc, 512, depth);
        }
    }

    #[test]
    fn deeper_memory_never_needs_more_channels() {
        let soc = p22810();
        let mut prev = usize::MAX;
        for depth_kv in [384u64, 512, 768, 1024] {
            let ate = AteSpec::new(512, depth_kv * 1024, 5.0e6);
            let arch = design_minimal_architecture(&soc, &ate).unwrap();
            let k = arch.total_channels();
            assert!(k <= prev, "depth {depth_kv}K: k={k} > previous {prev}");
            prev = k;
        }
    }

    #[test]
    fn empty_soc_is_rejected() {
        let soc = Soc::new("empty");
        let ate = AteSpec::new(64, 1024, 1.0e6);
        assert_eq!(
            design_minimal_architecture(&soc, &ate),
            Err(TamError::EmptySoc)
        );
    }

    #[test]
    fn infeasible_module_is_reported() {
        // A module whose floor time exceeds the depth no matter the width.
        let soc = Soc::from_modules(
            "huge",
            vec![Module::builder("mega")
                .patterns(10_000)
                .inputs(4)
                .outputs(4)
                .scan_chain(10_000)
                .build()],
        );
        let ate = AteSpec::new(64, 1024, 1.0e6);
        match design_minimal_architecture(&soc, &ate) {
            Err(TamError::ModuleInfeasible { .. }) => {}
            other => panic!("expected ModuleInfeasible, got {other:?}"),
        }
    }

    #[test]
    fn insufficient_channels_is_reported() {
        // Two modules that each need the full (tiny) channel budget.
        let module = |name: &str| {
            Module::builder(name)
                .patterns(100)
                .inputs(2)
                .outputs(2)
                .scan_chains([100u64, 100])
                .build()
        };
        let soc = Soc::from_modules("pair", vec![module("a"), module("b")]);
        // Depth forces width 2 per module; only 2 channels (width 1) exist in total.
        let ate = AteSpec::new(2, 6_000, 1.0e6);
        let result = design_minimal_architecture(&soc, &ate);
        assert!(
            matches!(
                result,
                Err(TamError::InsufficientChannels { .. }) | Err(TamError::ModuleInfeasible { .. })
            ),
            "got {result:?}"
        );
    }

    #[test]
    fn single_module_soc_gets_its_minimum_width() {
        let soc = Soc::from_modules(
            "single",
            vec![Module::builder("core")
                .patterns(50)
                .inputs(8)
                .outputs(8)
                .scan_chains([200u64, 200, 200, 200])
                .build()],
        );
        let table = TimeTable::build(&soc, 32);
        let depth = table.time(ModuleId(0), 3);
        let arch = design_with_table(&table, 64, depth).unwrap();
        assert_eq!(arch.groups.len(), 1);
        assert_eq!(arch.groups[0].width, 3);
        assert_eq!(arch.total_channels(), 6);
    }

    #[test]
    fn generous_depth_collapses_to_few_channels() {
        let soc = d695();
        let ate = AteSpec::new(256, u64::MAX / 4, 5.0e6);
        let arch = design_minimal_architecture(&soc, &ate).unwrap();
        // Everything fits serially on a single narrow group.
        assert_eq!(arch.total_channels(), 2);
        assert_eq!(arch.groups.len(), 1);
    }

    #[test]
    fn step1_is_deterministic() {
        let soc = p34392();
        let ate = AteSpec::new(512, 1024 * 1024, 5.0e6);
        let a = design_minimal_architecture(&soc, &ate).unwrap();
        let b = design_minimal_architecture(&soc, &ate).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tighter_depth_uses_more_channels_for_p93791() {
        let soc = p93791();
        let shallow =
            design_minimal_architecture(&soc, &AteSpec::new(512, 1_000_000, 5.0e6)).unwrap();
        let deep = design_minimal_architecture(&soc, &AteSpec::new(512, 3_512_000, 5.0e6)).unwrap();
        assert!(shallow.total_channels() > deep.total_channels());
    }
}
