//! Test-architecture (TAM / channel-group) design.
//!
//! This crate implements the architecture-design half of Goel & Marinissen
//! (DATE 2005): partition the ATE channels assigned to one SOC into *channel
//! groups* (TAMs), assign every module to a group, and size the groups such
//! that the whole SOC test fits into the ATE vector memory in a single load.
//!
//! * [`step1`] — Step 1 of the paper's two-step algorithm: minimise the
//!   number of ATE channels used by one SOC (criterion 1) while secondarily
//!   minimising the vector-memory fill (criterion 2),
//! * [`redistribute`] — the channel-redistribution move used by Step 2 when
//!   sites are given up and their channels are handed to the remaining
//!   sites,
//! * [`baseline`] — a reimplementation of the rectangle-bin-packing approach
//!   of Iyengar et al. (ITC 2002, reference \[7\]) and the theoretical lower
//!   bound on the channel count, both used for Table 1,
//! * [`timetable`] — a precomputed module-width-to-test-time table shared
//!   by all algorithms. It is built through the wrapper crate's fast row
//!   kernel (`soctest_wrapper::row`) with rayon parallelism over modules —
//!   two orders of magnitude faster than running a full COMBINE wrapper
//!   design per `(module, width)` pair — while
//!   `TimeTable::build_reference` keeps the full-fidelity loop as a
//!   cross-check and benchmark baseline. All algorithms consume tables
//!   through the [`TimeLookup`] trait,
//! * [`lazy`] — [`LazyTimeTable`], the demand-driven alternative: cells
//!   are computed on first probe only (rayon-safe atomic cache, paged to
//!   the probed footprint), which is what lets the optimizer handle
//!   10k-module and flat (single-module, many-thousand-chain) SOCs
//!   without materialising whole tables,
//! * [`store`] — [`RowStore`], the content-addressed `hash(ModuleShape) →
//!   time row` cache behind the lazy table: rows survive table regrows,
//!   are shared by every SOC with an equal module shape, and persist
//!   across processes in a versioned, checksummed cache file,
//! * [`architecture`] / [`schedule`] — the resulting [`TestArchitecture`]
//!   and an explicit per-group test schedule.
//!
//! Throughout the crate, *width* counts wrapper chains / TAM wires; one unit
//! of width consumes **two** ATE channels (one stimulus, one response),
//! which is why the paper requires the per-SOC channel count `k` to be even.
//!
//! # Example
//!
//! ```
//! use soctest_soc_model::benchmarks::d695;
//! use soctest_ate::AteSpec;
//! use soctest_tam::step1::design_minimal_architecture;
//!
//! let soc = d695();
//! let ate = AteSpec::new(64, 96 * 1024, 5.0e6);
//! let arch = design_minimal_architecture(&soc, &ate)?;
//! assert!(arch.total_channels() <= ate.channels);
//! assert!(arch.test_time_cycles() <= ate.vector_memory_depth);
//! # Ok::<(), soctest_tam::TamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod architecture;
pub mod baseline;
pub mod error;
pub mod lazy;
pub mod redistribute;
pub mod schedule;
pub mod step1;
pub mod store;
pub mod timetable;

pub use architecture::{ChannelGroup, TestArchitecture};
pub use error::TamError;
pub use lazy::{LazyTimeTable, StatsEpoch};
pub use schedule::{ScheduleEntry, TestSchedule};
pub use store::{
    open_envelope, push_u64, seal_envelope, write_atomic, Cursor, RowStore, RowStoreStats,
    StoreError, StoreRow,
};
pub use timetable::{clamped_tam_width, max_tam_width, TimeLookup, TimeTable};

/// The snapshot/diff counter pattern shared by every observability layer:
/// take an epoch before a unit of work, another after, and
/// `delta_since(&earlier)` attributes exactly what the work added.
/// Implemented by the table epoch ([`StatsEpoch`]), the row-store
/// counters ([`RowStoreStats`]) and the vendored pool's occupancy
/// counters ([`rayon::PoolStats`]).
pub trait EpochDelta: Copy {
    /// Counter growth from `earlier` to `self` (saturating on restarts).
    #[must_use]
    fn delta_since(&self, earlier: &Self) -> Self;
}

impl EpochDelta for StatsEpoch {
    fn delta_since(&self, earlier: &Self) -> Self {
        StatsEpoch::delta_since(self, earlier)
    }
}

impl EpochDelta for RowStoreStats {
    fn delta_since(&self, earlier: &Self) -> Self {
        RowStoreStats::delta_since(self, earlier)
    }
}

impl EpochDelta for rayon::PoolStats {
    fn delta_since(&self, earlier: &Self) -> Self {
        rayon::PoolStats::delta_since(self, earlier)
    }
}
