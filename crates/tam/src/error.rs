//! Errors produced by the test-architecture design algorithms.

use std::fmt;

/// Errors of the TAM / channel-group design algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamError {
    /// A single module cannot meet the vector-memory depth even when given
    /// every available ATE channel; the SOC cannot be tested on this ATE.
    ModuleInfeasible {
        /// Name of the offending module.
        module: String,
        /// The vector-memory depth per channel of the target ATE.
        depth: u64,
        /// The maximum width (wrapper chains) that was tried.
        max_width: usize,
    },
    /// The modules individually fit, but no assignment was found within the
    /// available number of ATE channels.
    InsufficientChannels {
        /// Number of ATE channels available for one SOC.
        available_channels: usize,
    },
    /// The SOC contains no modules.
    EmptySoc,
}

impl fmt::Display for TamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamError::ModuleInfeasible {
                module,
                depth,
                max_width,
            } => write!(
                f,
                "module `{module}` cannot fit a vector memory depth of {depth} cycles \
                 even at width {max_width}; the SOC cannot be tested on this ATE"
            ),
            TamError::InsufficientChannels { available_channels } => write!(
                f,
                "no feasible module-to-channel-group assignment within {available_channels} ATE channels"
            ),
            TamError::EmptySoc => write!(f, "the SOC contains no modules"),
        }
    }
}

impl std::error::Error for TamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_module_and_depth() {
        let err = TamError::ModuleInfeasible {
            module: "cpu".into(),
            depth: 1024,
            max_width: 8,
        };
        let text = err.to_string();
        assert!(text.contains("cpu"));
        assert!(text.contains("1024"));
    }

    #[test]
    fn display_for_channel_shortage() {
        let err = TamError::InsufficientChannels {
            available_channels: 16,
        };
        assert!(err.to_string().contains("16"));
    }

    #[test]
    fn display_for_empty_soc() {
        assert!(TamError::EmptySoc.to_string().contains("no modules"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<TamError>();
    }
}
