//! Errors produced by the test-architecture design algorithms.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;

/// Errors of the TAM / channel-group design algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamError {
    /// A single module cannot meet the vector-memory depth even when given
    /// every available ATE channel; the SOC cannot be tested on this ATE.
    ModuleInfeasible {
        /// Name of the offending module.
        module: String,
        /// The vector-memory depth per channel of the target ATE.
        depth: u64,
        /// The maximum width (wrapper chains) that was tried.
        max_width: usize,
    },
    /// The modules individually fit, but no assignment was found within the
    /// available number of ATE channels.
    InsufficientChannels {
        /// Number of ATE channels available for one SOC.
        available_channels: usize,
    },
    /// The SOC contains no modules.
    EmptySoc,
}

impl fmt::Display for TamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamError::ModuleInfeasible {
                module,
                depth,
                max_width,
            } => write!(
                f,
                "module `{module}` cannot fit a vector memory depth of {depth} cycles \
                 even at width {max_width}; the SOC cannot be tested on this ATE"
            ),
            TamError::InsufficientChannels { available_channels } => write!(
                f,
                "no feasible module-to-channel-group assignment within {available_channels} ATE channels"
            ),
            TamError::EmptySoc => write!(f, "the SOC contains no modules"),
        }
    }
}

impl std::error::Error for TamError {}

// Hand-written serde in real serde's externally-tagged enum format (the
// vendored derive covers unit enums only): `"EmptySoc"` for the unit
// variant, `{"ModuleInfeasible": {...}}` for the data variants — so
// service-layer error frames keep their wire shape if the vendored serde
// is swapped for the crates.io release.
impl Serialize for TamError {
    fn to_value(&self) -> Value {
        match self {
            TamError::ModuleInfeasible {
                module,
                depth,
                max_width,
            } => Value::Object(vec![(
                "ModuleInfeasible".to_string(),
                Value::Object(vec![
                    ("module".to_string(), module.to_value()),
                    ("depth".to_string(), depth.to_value()),
                    ("max_width".to_string(), max_width.to_value()),
                ]),
            )]),
            TamError::InsufficientChannels { available_channels } => Value::Object(vec![(
                "InsufficientChannels".to_string(),
                Value::Object(vec![(
                    "available_channels".to_string(),
                    available_channels.to_value(),
                )]),
            )]),
            TamError::EmptySoc => Value::String("EmptySoc".to_string()),
        }
    }
}

impl Deserialize for TamError {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if let Some(name) = value.as_str() {
            return match name {
                "EmptySoc" => Ok(TamError::EmptySoc),
                other => Err(SerdeError::custom(format!(
                    "unknown unit variant `{other}` for TamError"
                ))),
            };
        }
        let fields = value
            .as_object()
            .ok_or_else(|| SerdeError::custom("expected object for TamError"))?;
        let (tag, body) = match fields {
            [(tag, body)] => (tag.as_str(), body),
            _ => {
                return Err(SerdeError::custom(
                    "expected exactly one variant tag for TamError",
                ))
            }
        };
        match tag {
            "ModuleInfeasible" => Ok(TamError::ModuleInfeasible {
                module: serde::get_field(body, "module", "TamError::ModuleInfeasible")?,
                depth: serde::get_field(body, "depth", "TamError::ModuleInfeasible")?,
                max_width: serde::get_field(body, "max_width", "TamError::ModuleInfeasible")?,
            }),
            "InsufficientChannels" => Ok(TamError::InsufficientChannels {
                available_channels: serde::get_field(
                    body,
                    "available_channels",
                    "TamError::InsufficientChannels",
                )?,
            }),
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for TamError"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_module_and_depth() {
        let err = TamError::ModuleInfeasible {
            module: "cpu".into(),
            depth: 1024,
            max_width: 8,
        };
        let text = err.to_string();
        assert!(text.contains("cpu"));
        assert!(text.contains("1024"));
    }

    #[test]
    fn display_for_channel_shortage() {
        let err = TamError::InsufficientChannels {
            available_channels: 16,
        };
        assert!(err.to_string().contains("16"));
    }

    #[test]
    fn display_for_empty_soc() {
        assert!(TamError::EmptySoc.to_string().contains("no modules"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<TamError>();
    }

    #[test]
    fn serde_round_trips_every_variant() {
        let variants = [
            TamError::ModuleInfeasible {
                module: "cpu".into(),
                depth: 1024,
                max_width: 8,
            },
            TamError::InsufficientChannels {
                available_channels: 16,
            },
            TamError::EmptySoc,
        ];
        for err in &variants {
            let back = TamError::from_value(&err.to_value()).unwrap();
            assert_eq!(&back, err);
        }
        assert_eq!(
            TamError::EmptySoc.to_value(),
            Value::String("EmptySoc".into())
        );
    }

    #[test]
    fn serde_rejects_unknown_variants() {
        assert!(TamError::from_value(&Value::String("Nope".into())).is_err());
        assert!(TamError::from_value(&Value::Object(vec![("Nope".into(), Value::Null)])).is_err());
        assert!(TamError::from_value(&Value::U64(3)).is_err());
    }
}
