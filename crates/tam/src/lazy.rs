//! Demand-driven module test-time table.
//!
//! The two-step optimizer only ever probes a sparse subset of TAM widths:
//! Step 1 binary-searches each module's minimum width (O(log W) probes) and
//! then looks up group widths, Step 2 re-wraps the fullest groups one width
//! step at a time. Eagerly materialising every `(module, width)` cell — as
//! [`crate::TimeTable::build`] does — therefore wastes almost the whole
//! table on large SOCs, and is the wall between the 2000-module tier and
//! the 10k-module / flat-SOC workloads.
//!
//! [`LazyTimeTable`] keeps one width-independent
//! [`soctest_wrapper::row::ModuleShape`] per module (chains sorted once at
//! construction) and a paged per-cell atomic cache: cell pages of
//! `PAGE_WIDTHS` (64) widths are allocated only when a probe first lands in
//! them, so the resident footprint follows the *probed* widths instead of
//! the `modules × max_width` rectangle (which alone is ~80 MB at the
//! 10k-module / 3072-channel tier). A cell is computed on first probe —
//! O(s) in the wide region, O(s log w) through the heap-based LPT in the
//! narrow region — and every later probe is a single atomic load.
//!
//! Two further sources can fill a cell without computing it:
//!
//! * a **row store** ([`crate::RowStore`], attached via
//!   [`LazyTimeTable::with_store`]): before computing, the table consults
//!   the content-addressed store row of the module's shape, so rows
//!   computed by another table, another SOC sharing the shape, or another
//!   *process* (via `RowStore::load`) are reused instead of rebuilt;
//! * a **predecessor table** (via [`LazyTimeTable::grown`]): regrowing to
//!   a larger width copies every already-built cell across, so widening a
//!   session's table never discards its warm cells.
//!
//! Concurrency: cells are `AtomicU64`s whose value *is* the entire payload
//! (`u64::MAX` = not yet computed), so plain relaxed loads/stores suffice —
//! no locks on the probe path (pages initialise through `OnceLock`). Two
//! threads racing on an unset cell both compute the same deterministic
//! value and store it twice; the table is therefore safe to share across a
//! rayon sweep, and parallel probe results are bit-identical to
//! [`crate::TimeTable::build_sequential`] (`tests/lazy_equivalence.rs`).
//! Per-thread LPT scratch lives in a thread-local, so steady-state probes
//! allocate nothing.

use crate::store::{RowStore, StoreRow};
use crate::timetable::TimeLookup;
use rayon::prelude::*;
use soctest_soc_model::{ModuleId, Soc};
use soctest_wrapper::row::{ModuleShape, ShapeScratch};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Cell sentinel: "not computed yet". Reserved out of the test-time domain
/// by the row kernel (`fit_u64` rejects times that do not fit *strictly
/// below* `u64::MAX`).
const UNSET: u64 = u64::MAX;

/// Widths per lazily-allocated cell page. Optimizer probes cluster (binary
/// searches and Step 2's one-step re-wraps walk neighbouring widths), so a
/// modest page amortises the `OnceLock` per-page cost while keeping the
/// footprint close to the probed set.
const PAGE_WIDTHS: usize = 64;

thread_local! {
    /// Reusable LPT scratch per thread. The rayon pool is persistent, so
    /// each worker allocates this once on its first probe ever and then
    /// reuses it across *all* tables, sweeps and engine batches for the
    /// rest of the process — steady-state probes allocate nothing.
    static SCRATCH: RefCell<ShapeScratch> = RefCell::new(ShapeScratch::new());
}

/// A point-in-time snapshot of a [`LazyTimeTable`]'s materialisation
/// counters, taken with [`LazyTimeTable::stats_epoch`].
///
/// The epoch/diff pattern is what turns engine-lifetime totals into
/// per-request attribution: snapshot before serving a request, snapshot
/// after, and [`StatsEpoch::delta_since`] yields exactly what that
/// request added — cells computed fresh, cells replayed from the row
/// store, cells inherited by a regrow, pages allocated.
///
/// Determinism: the deltas of [`StatsEpoch::cells_built`],
/// `cells_inherited` and `pages_allocated` are race-deterministic at any
/// thread count (first-swap-wins counting admits exactly one counted
/// writer per cell); the *split* between `cells_computed` and
/// `cells_from_store` can shift when concurrent probes race a store
/// publication, so wire-visible stats should report the sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct StatsEpoch {
    /// Cells computed fresh by the table at snapshot time.
    pub cells_computed: u64,
    /// Cells filled from the attached row store at snapshot time.
    pub cells_from_store: u64,
    /// Cells copied from a predecessor table at snapshot time.
    pub cells_inherited: u64,
    /// Cell pages allocated at snapshot time.
    pub pages_allocated: u64,
}

impl StatsEpoch {
    /// Counter growth from `earlier` to `self`, saturating: diffing
    /// epochs of two different tables (e.g. across a regrow) yields
    /// zeros for counters that restarted, never a wrapped giant.
    #[must_use]
    pub fn delta_since(&self, earlier: &StatsEpoch) -> StatsEpoch {
        StatsEpoch {
            cells_computed: self.cells_computed.saturating_sub(earlier.cells_computed),
            cells_from_store: self
                .cells_from_store
                .saturating_sub(earlier.cells_from_store),
            cells_inherited: self.cells_inherited.saturating_sub(earlier.cells_inherited),
            pages_allocated: self.pages_allocated.saturating_sub(earlier.pages_allocated),
        }
    }

    /// Cells materialised however they got here — the race-deterministic
    /// total ([`LazyTimeTable::cells_built`] at snapshot time).
    #[must_use]
    pub fn cells_built(&self) -> u64 {
        self.cells_computed + self.cells_from_store + self.cells_inherited
    }
}

/// The lazily-materialised cell state of one module.
#[derive(Debug)]
struct ModuleCells {
    /// `pages[p]` covers widths `p * PAGE_WIDTHS + 1 ..= (p + 1) * PAGE_WIDTHS`,
    /// allocated on first probe into the page.
    pages: Vec<OnceLock<Box<[AtomicU64]>>>,
    /// The module's content-addressed store row, resolved on the first
    /// probe that misses the local cells (only when a store is attached).
    store_row: OnceLock<Arc<StoreRow>>,
}

impl ModuleCells {
    fn new(pages: usize) -> Self {
        ModuleCells {
            pages: (0..pages).map(|_| OnceLock::new()).collect(),
            store_row: OnceLock::new(),
        }
    }
}

/// A module test-time table that computes `(module, width)` cells on first
/// probe instead of eagerly for every width.
///
/// Implements [`TimeLookup`], so [`crate::step1`], [`crate::redistribute`]
/// and the multi-site optimizer accept it interchangeably with the eager
/// [`crate::TimeTable`]; probed entries are bit-identical between the two.
///
/// # Example
///
/// ```
/// use soctest_soc_model::benchmarks::d695;
/// use soctest_tam::{LazyTimeTable, TimeLookup, TimeTable};
///
/// let soc = d695();
/// let lazy = LazyTimeTable::new(&soc, 32);
/// let eager = TimeTable::build(&soc, 32);
/// let id = soctest_soc_model::ModuleId(3);
/// assert_eq!(lazy.time(id, 7), eager.time(id, 7));
/// // Only the probed cell was materialised.
/// assert_eq!(lazy.cells_built(), 1);
/// ```
pub struct LazyTimeTable {
    /// Width-independent per-module state (sorted chains, cells, patterns).
    shapes: Vec<ModuleShape>,
    /// Paged cell cache, one entry per module.
    cells: Vec<ModuleCells>,
    max_width: usize,
    /// Cells computed fresh by this table (each counted once).
    computed: AtomicUsize,
    /// Cells filled from the attached row store (each counted once).
    from_store: AtomicUsize,
    /// Cells copied from a predecessor table by [`LazyTimeTable::grown`].
    inherited: AtomicUsize,
    /// Pages allocated so far, across all modules (memory accounting).
    pages_allocated: AtomicUsize,
    /// The content-addressed row store consulted before computing a cell,
    /// if one is attached.
    store: Option<Arc<RowStore>>,
}

impl LazyTimeTable {
    /// Prepares the table for `soc`, covering widths `1..=max_width`.
    ///
    /// No test time is computed and no cell page is allocated yet;
    /// construction only sorts each module's scan chains (in parallel
    /// over modules).
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub fn new(soc: &Soc, max_width: usize) -> Self {
        LazyTimeTable::from_soc(soc, max_width, None)
    }

    /// [`LazyTimeTable::new`] with a content-addressed row store attached:
    /// every cell probe that misses the local pages consults the store
    /// row of the module's shape before computing, and every fresh
    /// computation is published back — so tables (and processes) sharing
    /// `store` never rebuild each other's rows.
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub fn with_store(soc: &Soc, max_width: usize, store: Arc<RowStore>) -> Self {
        LazyTimeTable::from_soc(soc, max_width, Some(store))
    }

    fn from_soc(soc: &Soc, max_width: usize, store: Option<Arc<RowStore>>) -> Self {
        // Parallel over modules; nests under an engine batch running on
        // the same work-stealing pool (a table built from inside a batch
        // worker fans its rows out instead of running them serially).
        let shapes: Vec<ModuleShape> = soc.modules().par_iter().map(ModuleShape::of).collect();
        LazyTimeTable::from_parts(shapes, max_width, store)
    }

    fn from_parts(
        shapes: Vec<ModuleShape>,
        max_width: usize,
        store: Option<Arc<RowStore>>,
    ) -> Self {
        assert!(max_width > 0, "max_width must be at least 1");
        let pages = max_width.div_ceil(PAGE_WIDTHS);
        let cells = (0..shapes.len()).map(|_| ModuleCells::new(pages)).collect();
        LazyTimeTable {
            shapes,
            cells,
            max_width,
            computed: AtomicUsize::new(0),
            from_store: AtomicUsize::new(0),
            inherited: AtomicUsize::new(0),
            pages_allocated: AtomicUsize::new(0),
            store,
        }
    }

    /// A new table covering `new_width`, inheriting everything this table
    /// already knows: the sorted shapes, the attached store (if any), and
    /// **every built cell** — copied across, so regrowing never discards
    /// warm cells ([`LazyTimeTable::cells_built`] does not reset). Cells
    /// built in `self` *concurrently with* the copy may be missed (they
    /// are recomputed on demand, deterministically); cells already built
    /// when the copy starts all survive.
    ///
    /// # Panics
    ///
    /// Panics if `new_width < self.max_width()` — regrow only widens.
    pub fn grown(&self, new_width: usize) -> LazyTimeTable {
        assert!(
            new_width >= self.max_width,
            "grown({new_width}) must not shrink a width-{} table",
            self.max_width
        );
        let table = LazyTimeTable::from_parts(self.shapes.clone(), new_width, self.store.clone());
        let mut copied = 0usize;
        for (module, source) in self.cells.iter().enumerate() {
            // The shared store row is already resolved — hand it on.
            if let Some(row) = source.store_row.get() {
                let _ = table.cells[module].store_row.set(Arc::clone(row));
            }
            for (page_index, page) in source.pages.iter().enumerate() {
                let Some(source_page) = page.get() else {
                    continue;
                };
                // Page geometry is width-independent, so source page `p`
                // is destination page `p` verbatim.
                let destination = table.page(module, page_index);
                for (offset, cell) in source_page.iter().enumerate() {
                    let value = cell.load(Ordering::Relaxed);
                    if value != UNSET {
                        destination[offset].store(value, Ordering::Relaxed);
                        copied += 1;
                    }
                }
            }
        }
        table.inherited.store(copied, Ordering::Relaxed);
        table
    }

    /// The attached row store, if any.
    pub fn store(&self) -> Option<&Arc<RowStore>> {
        self.store.as_ref()
    }

    /// The maximum width covered by the table.
    pub fn max_width(&self) -> usize {
        self.max_width
    }

    /// Number of modules covered by the table.
    pub fn num_modules(&self) -> usize {
        self.shapes.len()
    }

    /// The (initialised-on-first-use) cell page `page_index` of `module`.
    fn page(&self, module: usize, page_index: usize) -> &[AtomicU64] {
        self.cells[module].pages[page_index].get_or_init(|| {
            self.pages_allocated.fetch_add(1, Ordering::Relaxed);
            (0..PAGE_WIDTHS)
                .map(|_| AtomicU64::new(UNSET))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        })
    }

    /// Test time of `module` at `width` wrapper chains, computing and
    /// caching the cell on first probe (consulting the attached row store,
    /// if any, before computing).
    ///
    /// # Panics
    ///
    /// Panics if `module` or `width` is out of range.
    pub fn time(&self, module: ModuleId, width: usize) -> u64 {
        assert!(
            width >= 1 && width <= self.max_width,
            "width {width} out of range"
        );
        let index = width - 1;
        let page = self.page(module.0, index / PAGE_WIDTHS);
        let cell = &page[index % PAGE_WIDTHS];
        let cached = cell.load(Ordering::Relaxed);
        if cached != UNSET {
            return cached;
        }
        if let Some(store) = &self.store {
            let row = self.cells[module.0]
                .store_row
                .get_or_init(|| store.row_for_shape(&self.shapes[module.0]));
            if let Some(value) = row.get(width) {
                if cell.swap(value, Ordering::Relaxed) == UNSET {
                    self.from_store.fetch_add(1, Ordering::Relaxed);
                    store.note_served();
                }
                return value;
            }
            let value = self.compute(module.0, width);
            if row.insert(width, value) {
                // First publisher of this (shape, width) pair anywhere in
                // the process — the deterministic "rows rebuilt" count.
                store.note_computed();
            }
            if cell.swap(value, Ordering::Relaxed) == UNSET {
                self.computed.fetch_add(1, Ordering::Relaxed);
            }
            return value;
        }
        let value = self.compute(module.0, width);
        if cell.swap(value, Ordering::Relaxed) == UNSET {
            // First writer of this cell; racing duplicates store the same
            // deterministic value and are not double-counted.
            self.computed.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    fn compute(&self, module: usize, width: usize) -> u64 {
        let value =
            SCRATCH.with(|scratch| self.shapes[module].time_at(width, &mut scratch.borrow_mut()));
        debug_assert_ne!(value, UNSET, "fit_u64 keeps times below the sentinel");
        value
    }

    /// Whether the `(module, width)` cell has been computed already.
    /// Never allocates: an untouched page reports `false`.
    pub fn is_built(&self, module: ModuleId, width: usize) -> bool {
        assert!(
            width >= 1 && width <= self.max_width,
            "width {width} out of range"
        );
        let index = width - 1;
        match self.cells[module.0].pages[index / PAGE_WIDTHS].get() {
            Some(page) => page[index % PAGE_WIDTHS].load(Ordering::Relaxed) != UNSET,
            None => false,
        }
    }

    /// A snapshot of the materialisation counters for per-request
    /// attribution: take one epoch before a unit of work, another after,
    /// and [`StatsEpoch::delta_since`] is what the work added. Four
    /// relaxed loads — cheap enough to take per request.
    pub fn stats_epoch(&self) -> StatsEpoch {
        StatsEpoch {
            cells_computed: self.computed.load(Ordering::Relaxed) as u64,
            cells_from_store: self.from_store.load(Ordering::Relaxed) as u64,
            cells_inherited: self.inherited.load(Ordering::Relaxed) as u64,
            pages_allocated: self.pages_allocated.load(Ordering::Relaxed) as u64,
        }
    }

    /// Number of `(module, width)` cells materialised so far, however they
    /// got here: computed fresh, served by the row store, or inherited
    /// from the table [`LazyTimeTable::grown`] regrew.
    pub fn cells_built(&self) -> usize {
        self.cells_computed() + self.cells_from_store() + self.cells_inherited()
    }

    /// Cells this table computed fresh (kernel evaluations).
    pub fn cells_computed(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    /// Cells filled from the attached row store instead of computed.
    pub fn cells_from_store(&self) -> usize {
        self.from_store.load(Ordering::Relaxed)
    }

    /// Cells copied from the predecessor table by [`LazyTimeTable::grown`].
    pub fn cells_inherited(&self) -> usize {
        self.inherited.load(Ordering::Relaxed)
    }

    /// Total number of cells an eager build would compute
    /// (`num_modules · max_width`).
    pub fn cells_total(&self) -> usize {
        self.num_modules() * self.max_width
    }

    /// Estimated resident bytes: 8 per *allocated* cell (cells come in
    /// pages of `PAGE_WIDTHS` (64)) plus a small fixed overhead — the probed
    /// footprint, not the `modules × max_width` rectangle.
    pub fn memory_bytes(&self) -> u64 {
        1024 + (self.pages_allocated.load(Ordering::Relaxed) as u64) * (PAGE_WIDTHS as u64) * 8
    }

    /// `cells_built / cells_total`: the fraction of the table an eager
    /// build would have wasted effort on. Reported by `perf_baseline` as
    /// `rows_built / rows_total`.
    pub fn build_ratio(&self) -> f64 {
        if self.cells_total() == 0 {
            return 0.0;
        }
        self.cells_built() as f64 / self.cells_total() as f64
    }
}

impl TimeLookup for LazyTimeTable {
    fn num_modules(&self) -> usize {
        LazyTimeTable::num_modules(self)
    }

    fn max_width(&self) -> usize {
        LazyTimeTable::max_width(self)
    }

    fn time(&self, module: ModuleId, width: usize) -> u64 {
        LazyTimeTable::time(self, module, width)
    }
    // `min_width_for_time` / `group_fill` use the trait defaults: the
    // probing binary search (sound by the width-monotonicity theorem in
    // `soctest_wrapper::row`) and the per-module time sum.
}

impl fmt::Debug for LazyTimeTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazyTimeTable")
            .field("modules", &self.num_modules())
            .field("max_width", &self.max_width)
            .field("cells_built", &self.cells_built())
            .field("cells_computed", &self.cells_computed())
            .field("cells_from_store", &self.cells_from_store())
            .field("cells_inherited", &self.cells_inherited())
            .field("store", &self.store.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timetable::TimeTable;
    use soctest_soc_model::benchmarks::d695;

    #[test]
    fn probed_cells_match_the_eager_table() {
        let soc = d695();
        let lazy = LazyTimeTable::new(&soc, 24);
        let eager = TimeTable::build_sequential(&soc, 24);
        for (id, _) in soc.iter() {
            for width in [1usize, 2, 5, 13, 24] {
                assert_eq!(lazy.time(id, width), eager.time(id, width));
            }
        }
    }

    #[test]
    fn cells_are_built_on_demand_only() {
        let soc = d695();
        let lazy = LazyTimeTable::new(&soc, 24);
        assert_eq!(lazy.cells_built(), 0);
        assert!(!lazy.is_built(ModuleId(0), 5));
        let first = lazy.time(ModuleId(0), 5);
        assert!(lazy.is_built(ModuleId(0), 5));
        assert_eq!(lazy.cells_built(), 1);
        assert_eq!(lazy.cells_computed(), 1);
        // A second probe serves the cache and does not recount.
        assert_eq!(lazy.time(ModuleId(0), 5), first);
        assert_eq!(lazy.cells_built(), 1);
        assert_eq!(lazy.cells_total(), soc.num_modules() * 24);
        assert!(lazy.build_ratio() > 0.0 && lazy.build_ratio() < 1.0);
    }

    #[test]
    fn stats_epoch_deltas_attribute_per_request_work() {
        let soc = d695();
        let lazy = LazyTimeTable::new(&soc, 24);
        let e0 = lazy.stats_epoch();
        assert_eq!(e0, StatsEpoch::default());
        lazy.time(ModuleId(0), 5);
        lazy.time(ModuleId(1), 5);
        let e1 = lazy.stats_epoch();
        let d1 = e1.delta_since(&e0);
        assert_eq!(d1.cells_computed, 2);
        assert_eq!(d1.cells_built(), 2);
        assert_eq!(d1.pages_allocated, 2);
        lazy.time(ModuleId(0), 5); // cached probe adds nothing
        lazy.time(ModuleId(2), 7);
        let d2 = lazy.stats_epoch().delta_since(&e1);
        assert_eq!(d2.cells_computed, 1);
        // Per-step deltas sum to the lifetime totals.
        assert_eq!(
            d1.cells_built() + d2.cells_built(),
            lazy.cells_built() as u64
        );
        // A regrown table restarts its counters; diffing across the swap
        // saturates to zero instead of wrapping.
        let wide = lazy.grown(96);
        let regrown = wide.stats_epoch();
        assert_eq!(regrown.cells_computed, 0);
        assert_eq!(regrown.cells_inherited, lazy.cells_built() as u64);
        assert_eq!(e1.delta_since(&regrown).cells_inherited, 0);
    }

    #[test]
    fn memory_follows_the_probed_footprint() {
        let soc = d695();
        let lazy = LazyTimeTable::new(&soc, 4096);
        let untouched = lazy.memory_bytes();
        assert!(
            untouched < 64 * 1024,
            "an unprobed wide table must not allocate its rectangle, got {untouched}"
        );
        lazy.time(ModuleId(0), 1);
        lazy.time(ModuleId(0), 4096);
        let probed = lazy.memory_bytes();
        // Two pages (the first and the last) for one module.
        assert_eq!(probed, untouched + 2 * (PAGE_WIDTHS as u64) * 8);
        // Probing within an allocated page is free.
        lazy.time(ModuleId(0), 2);
        assert_eq!(lazy.memory_bytes(), probed);
    }

    #[test]
    fn store_backed_table_reuses_rows_instead_of_recomputing() {
        let soc = d695();
        let store = Arc::new(RowStore::new());
        let first = LazyTimeTable::with_store(&soc, 24, Arc::clone(&store));
        let plain = LazyTimeTable::new(&soc, 24);
        for (id, _) in soc.iter() {
            for width in [1usize, 7, 24] {
                assert_eq!(first.time(id, width), plain.time(id, width));
            }
        }
        let computed = store.stats().cells_computed;
        assert!(computed > 0);
        // A second table over the same store recomputes nothing.
        let second = LazyTimeTable::with_store(&soc, 24, Arc::clone(&store));
        for (id, _) in soc.iter() {
            for width in [1usize, 7, 24] {
                assert_eq!(second.time(id, width), plain.time(id, width));
            }
        }
        assert_eq!(store.stats().cells_computed, computed);
        assert_eq!(second.cells_computed(), 0);
        assert!(second.cells_from_store() > 0);
        assert_eq!(second.cells_built(), second.cells_from_store());
    }

    #[test]
    fn grown_table_keeps_built_cells_and_matches_the_eager_table() {
        let soc = d695();
        let narrow = LazyTimeTable::new(&soc, 24);
        for (id, _) in soc.iter() {
            narrow.time(id, 11);
        }
        let before = narrow.cells_built();
        assert!(before > 0);
        let wide = narrow.grown(96);
        assert_eq!(wide.max_width(), 96);
        assert_eq!(wide.cells_inherited(), before);
        assert_eq!(
            wide.cells_built(),
            before,
            "regrow must not reset cells_built"
        );
        // Inherited cells serve without recomputation...
        for (id, _) in soc.iter() {
            assert!(wide.is_built(id, 11));
        }
        assert_eq!(wide.cells_computed(), 0);
        // ...and fresh probes agree with an eager table at the new width.
        let eager = TimeTable::build_sequential(&soc, 96);
        for (id, _) in soc.iter() {
            for width in [1usize, 11, 24, 25, 96] {
                assert_eq!(wide.time(id, width), eager.time(id, width));
            }
        }
    }

    #[test]
    #[should_panic(expected = "must not shrink")]
    fn grown_refuses_to_shrink() {
        let _ = LazyTimeTable::new(&d695(), 24).grown(8);
    }

    #[test]
    fn min_width_and_group_fill_match_the_eager_table() {
        let soc = d695();
        let lazy = LazyTimeTable::new(&soc, 24);
        let eager = TimeTable::build_sequential(&soc, 24);
        for (id, _) in soc.iter() {
            for probe in [1usize, 4, 9, 24] {
                let budget = eager.time(id, probe);
                assert_eq!(
                    TimeLookup::min_width_for_time(&lazy, id, budget),
                    eager.min_width_for_time(id, budget)
                );
            }
            assert_eq!(TimeLookup::min_width_for_time(&lazy, id, 0), None);
        }
        let ids = [ModuleId(0), ModuleId(4), ModuleId(9)];
        assert_eq!(
            TimeLookup::group_fill(&lazy, &ids, 6),
            eager.group_fill(&ids, 6)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn width_out_of_range_panics() {
        let soc = d695();
        let lazy = LazyTimeTable::new(&soc, 8);
        let _ = lazy.time(ModuleId(0), 9);
    }

    #[test]
    #[should_panic(expected = "max_width")]
    fn zero_max_width_panics() {
        let _ = LazyTimeTable::new(&d695(), 0);
    }
}
