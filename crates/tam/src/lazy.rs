//! Demand-driven module test-time table.
//!
//! The two-step optimizer only ever probes a sparse subset of TAM widths:
//! Step 1 binary-searches each module's minimum width (O(log W) probes) and
//! then looks up group widths, Step 2 re-wraps the fullest groups one width
//! step at a time. Eagerly materialising every `(module, width)` cell — as
//! [`crate::TimeTable::build`] does — therefore wastes almost the whole
//! table on large SOCs, and is the wall between the 2000-module tier and
//! the 10k-module / flat-SOC workloads.
//!
//! [`LazyTimeTable`] keeps one width-independent
//! [`soctest_wrapper::row::ModuleShape`] per module (chains sorted once at
//! construction) and a per-cell atomic cache. A cell is computed on first
//! probe — O(s) in the wide region, O(s log w) through the heap-based LPT
//! in the narrow region — and every later probe is a single atomic load.
//!
//! Concurrency: cells are `AtomicU64`s whose value *is* the entire payload
//! (`u64::MAX` = not yet computed), so plain relaxed loads/stores suffice —
//! no locks, no `unsafe`. Two threads racing on an unset cell both compute
//! the same deterministic value and store it twice; the table is therefore
//! safe to share across a rayon sweep, and parallel probe results are
//! bit-identical to [`crate::TimeTable::build_sequential`]
//! (`tests/lazy_equivalence.rs`). Per-thread LPT scratch lives in a
//! thread-local, so steady-state probes allocate nothing.

use crate::timetable::TimeLookup;
use rayon::prelude::*;
use soctest_soc_model::{ModuleId, Soc};
use soctest_wrapper::row::{ModuleShape, ShapeScratch};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Cell sentinel: "not computed yet". Reserved out of the test-time domain
/// by the row kernel (`fit_u64` rejects times that do not fit *strictly
/// below* `u64::MAX`).
const UNSET: u64 = u64::MAX;

thread_local! {
    /// Reusable LPT scratch per thread. The rayon pool is persistent, so
    /// each worker allocates this once on its first probe ever and then
    /// reuses it across *all* tables, sweeps and engine batches for the
    /// rest of the process — steady-state probes allocate nothing.
    static SCRATCH: RefCell<ShapeScratch> = RefCell::new(ShapeScratch::new());
}

/// A module test-time table that computes `(module, width)` cells on first
/// probe instead of eagerly for every width.
///
/// Implements [`TimeLookup`], so [`crate::step1`], [`crate::redistribute`]
/// and the multi-site optimizer accept it interchangeably with the eager
/// [`crate::TimeTable`]; probed entries are bit-identical between the two.
///
/// # Example
///
/// ```
/// use soctest_soc_model::benchmarks::d695;
/// use soctest_tam::{LazyTimeTable, TimeLookup, TimeTable};
///
/// let soc = d695();
/// let lazy = LazyTimeTable::new(&soc, 32);
/// let eager = TimeTable::build(&soc, 32);
/// let id = soctest_soc_model::ModuleId(3);
/// assert_eq!(lazy.time(id, 7), eager.time(id, 7));
/// // Only the probed cell was materialised.
/// assert_eq!(lazy.cells_built(), 1);
/// ```
pub struct LazyTimeTable {
    /// Width-independent per-module state (sorted chains, cells, patterns).
    shapes: Vec<ModuleShape>,
    /// `cells[module][width - 1]`: computed test time, or [`UNSET`].
    cells: Vec<Vec<AtomicU64>>,
    max_width: usize,
    /// Number of cells computed so far (each cell counted once).
    built: AtomicUsize,
}

impl LazyTimeTable {
    /// Prepares the table for `soc`, covering widths `1..=max_width`.
    ///
    /// No test time is computed yet; construction only sorts each module's
    /// scan chains (in parallel over modules) and allocates the cell cache.
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub fn new(soc: &Soc, max_width: usize) -> Self {
        assert!(max_width > 0, "max_width must be at least 1");
        // Parallel over modules; nests under an engine batch running on
        // the same work-stealing pool (a table built from inside a batch
        // worker fans its rows out instead of running them serially).
        let shapes: Vec<ModuleShape> = soc.modules().par_iter().map(ModuleShape::of).collect();
        let cells = (0..shapes.len())
            .map(|_| (0..max_width).map(|_| AtomicU64::new(UNSET)).collect())
            .collect();
        LazyTimeTable {
            shapes,
            cells,
            max_width,
            built: AtomicUsize::new(0),
        }
    }

    /// The maximum width covered by the table.
    pub fn max_width(&self) -> usize {
        self.max_width
    }

    /// Number of modules covered by the table.
    pub fn num_modules(&self) -> usize {
        self.shapes.len()
    }

    /// Test time of `module` at `width` wrapper chains, computing and
    /// caching the cell on first probe.
    ///
    /// # Panics
    ///
    /// Panics if `module` or `width` is out of range.
    pub fn time(&self, module: ModuleId, width: usize) -> u64 {
        assert!(
            width >= 1 && width <= self.max_width,
            "width {width} out of range"
        );
        let cell = &self.cells[module.0][width - 1];
        let cached = cell.load(Ordering::Relaxed);
        if cached != UNSET {
            return cached;
        }
        let value =
            SCRATCH.with(|scratch| self.shapes[module.0].time_at(width, &mut scratch.borrow_mut()));
        debug_assert_ne!(value, UNSET, "fit_u64 keeps times below the sentinel");
        if cell.swap(value, Ordering::Relaxed) == UNSET {
            // First writer of this cell; racing duplicates store the same
            // deterministic value and are not double-counted.
            self.built.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Whether the `(module, width)` cell has been computed already.
    pub fn is_built(&self, module: ModuleId, width: usize) -> bool {
        assert!(
            width >= 1 && width <= self.max_width,
            "width {width} out of range"
        );
        self.cells[module.0][width - 1].load(Ordering::Relaxed) != UNSET
    }

    /// Number of `(module, width)` cells computed so far.
    pub fn cells_built(&self) -> usize {
        self.built.load(Ordering::Relaxed)
    }

    /// Total number of cells an eager build would compute
    /// (`num_modules · max_width`).
    pub fn cells_total(&self) -> usize {
        self.num_modules() * self.max_width
    }

    /// `cells_built / cells_total`: the fraction of the table an eager
    /// build would have wasted effort on. Reported by `perf_baseline` as
    /// `rows_built / rows_total`.
    pub fn build_ratio(&self) -> f64 {
        if self.cells_total() == 0 {
            return 0.0;
        }
        self.cells_built() as f64 / self.cells_total() as f64
    }
}

impl TimeLookup for LazyTimeTable {
    fn num_modules(&self) -> usize {
        LazyTimeTable::num_modules(self)
    }

    fn max_width(&self) -> usize {
        LazyTimeTable::max_width(self)
    }

    fn time(&self, module: ModuleId, width: usize) -> u64 {
        LazyTimeTable::time(self, module, width)
    }
    // `min_width_for_time` / `group_fill` use the trait defaults: the
    // probing binary search (sound by the width-monotonicity theorem in
    // `soctest_wrapper::row`) and the per-module time sum.
}

impl fmt::Debug for LazyTimeTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazyTimeTable")
            .field("modules", &self.num_modules())
            .field("max_width", &self.max_width)
            .field("cells_built", &self.cells_built())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timetable::TimeTable;
    use soctest_soc_model::benchmarks::d695;

    #[test]
    fn probed_cells_match_the_eager_table() {
        let soc = d695();
        let lazy = LazyTimeTable::new(&soc, 24);
        let eager = TimeTable::build_sequential(&soc, 24);
        for (id, _) in soc.iter() {
            for width in [1usize, 2, 5, 13, 24] {
                assert_eq!(lazy.time(id, width), eager.time(id, width));
            }
        }
    }

    #[test]
    fn cells_are_built_on_demand_only() {
        let soc = d695();
        let lazy = LazyTimeTable::new(&soc, 24);
        assert_eq!(lazy.cells_built(), 0);
        assert!(!lazy.is_built(ModuleId(0), 5));
        let first = lazy.time(ModuleId(0), 5);
        assert!(lazy.is_built(ModuleId(0), 5));
        assert_eq!(lazy.cells_built(), 1);
        // A second probe serves the cache and does not recount.
        assert_eq!(lazy.time(ModuleId(0), 5), first);
        assert_eq!(lazy.cells_built(), 1);
        assert_eq!(lazy.cells_total(), soc.num_modules() * 24);
        assert!(lazy.build_ratio() > 0.0 && lazy.build_ratio() < 1.0);
    }

    #[test]
    fn min_width_and_group_fill_match_the_eager_table() {
        let soc = d695();
        let lazy = LazyTimeTable::new(&soc, 24);
        let eager = TimeTable::build_sequential(&soc, 24);
        for (id, _) in soc.iter() {
            for probe in [1usize, 4, 9, 24] {
                let budget = eager.time(id, probe);
                assert_eq!(
                    TimeLookup::min_width_for_time(&lazy, id, budget),
                    eager.min_width_for_time(id, budget)
                );
            }
            assert_eq!(TimeLookup::min_width_for_time(&lazy, id, 0), None);
        }
        let ids = [ModuleId(0), ModuleId(4), ModuleId(9)];
        assert_eq!(
            TimeLookup::group_fill(&lazy, &ids, 6),
            eager.group_fill(&ids, 6)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn width_out_of_range_panics() {
        let soc = d695();
        let lazy = LazyTimeTable::new(&soc, 8);
        let _ = lazy.time(ModuleId(0), 9);
    }

    #[test]
    #[should_panic(expected = "max_width")]
    fn zero_max_width_panics() {
        let _ = LazyTimeTable::new(&d695(), 0);
    }
}
