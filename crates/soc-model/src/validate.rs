//! Structural validation of SOC and module descriptions.
//!
//! The optimizer crates assume well-formed inputs (for example: every module
//! has at least one pattern and at least one scannable element). The
//! validators in this module surface such problems up front with actionable
//! messages instead of producing degenerate architectures later.

use crate::module::Module;
use crate::soc::Soc;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A single validation finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationIssue {
    /// Name of the module the issue refers to, or `None` for SOC-level
    /// issues.
    pub module: Option<String>,
    /// Whether the issue makes the description unusable ([`Severity::Error`])
    /// or merely suspicious ([`Severity::Warning`]).
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.module {
            Some(m) => write!(f, "[{}] module `{}`: {}", self.severity, m, self.message),
            None => write!(f, "[{}] soc: {}", self.severity, self.message),
        }
    }
}

/// Severity of a [`ValidationIssue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but usable.
    Warning,
    /// Unusable description.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Validates a single module and returns all findings.
///
/// Checks performed:
///
/// * a module with zero test patterns is an error (it cannot be scheduled),
/// * a module with patterns but neither scan chains nor functional terminals
///   is an error (there is nothing to apply the patterns through),
/// * a zero-length scan chain is a warning,
/// * an empty name is an error.
///
/// # Example
///
/// ```
/// use soctest_soc_model::{validate_module, Module};
/// let m = Module::builder("ok").patterns(10).inputs(4).outputs(4).build();
/// assert!(validate_module(&m).is_empty());
/// ```
pub fn validate_module(module: &Module) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    let name = module.name().to_string();
    let mut push = |severity, message: String| {
        issues.push(ValidationIssue {
            module: Some(name.clone()),
            severity,
            message,
        })
    };

    if module.name().is_empty() {
        push(Severity::Error, "module name is empty".to_string());
    }
    if module.patterns() == 0 {
        push(Severity::Error, "module has zero test patterns".to_string());
    }
    if module.patterns() > 0 && module.num_scan_chains() == 0 && module.functional_terminals() == 0
    {
        push(
            Severity::Error,
            "module has patterns but no scan chains and no functional terminals".to_string(),
        );
    }
    for (i, chain) in module.scan_chains().iter().enumerate() {
        if chain.length == 0 {
            push(Severity::Warning, format!("scan chain {i} has zero length"));
        }
    }
    issues
}

/// Validates an SOC: runs [`validate_module`] on every module and adds
/// SOC-level checks (non-empty, unique module names).
///
/// # Example
///
/// ```
/// use soctest_soc_model::{benchmarks, validate_soc};
/// let soc = benchmarks::d695();
/// assert!(validate_soc(&soc).iter().all(|i| i.severity != soctest_soc_model::validate::Severity::Error));
/// ```
pub fn validate_soc(soc: &Soc) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    if soc.is_empty() {
        issues.push(ValidationIssue {
            module: None,
            severity: Severity::Error,
            message: "soc contains no modules".to_string(),
        });
    }
    let mut seen = HashSet::new();
    for (_, module) in soc.iter() {
        if !seen.insert(module.name().to_string()) {
            issues.push(ValidationIssue {
                module: Some(module.name().to_string()),
                severity: Severity::Error,
                message: "duplicate module name".to_string(),
            });
        }
        issues.extend(validate_module(module));
    }
    issues
}

/// Convenience predicate: true when [`validate_soc`] reports no
/// [`Severity::Error`] findings.
pub fn is_usable(soc: &Soc) -> bool {
    validate_soc(soc)
        .iter()
        .all(|issue| issue.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    #[test]
    fn valid_module_has_no_issues() {
        let m = Module::builder("good")
            .patterns(5)
            .inputs(3)
            .outputs(3)
            .scan_chain(10)
            .build();
        assert!(validate_module(&m).is_empty());
    }

    #[test]
    fn zero_patterns_is_error() {
        let m = Module::builder("nopat").inputs(3).outputs(1).build();
        let issues = validate_module(&m);
        assert!(issues.iter().any(|i| i.severity == Severity::Error));
    }

    #[test]
    fn no_access_path_is_error() {
        let m = Module::builder("island").patterns(10).build();
        let issues = validate_module(&m);
        assert!(issues.iter().any(|i| i
            .message
            .contains("no scan chains and no functional terminals")));
    }

    #[test]
    fn zero_length_chain_is_warning() {
        let m = Module::builder("weird")
            .patterns(10)
            .inputs(1)
            .scan_chains([0u64, 5])
            .build();
        let issues = validate_module(&m);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Warning);
    }

    #[test]
    fn empty_name_is_error() {
        let m = Module::builder("").patterns(1).inputs(1).build();
        assert!(validate_module(&m)
            .iter()
            .any(|i| i.message.contains("name")));
    }

    #[test]
    fn empty_soc_is_error() {
        let soc = Soc::new("empty");
        let issues = validate_soc(&soc);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Error);
        assert!(!is_usable(&soc));
    }

    #[test]
    fn duplicate_names_are_detected() {
        let mut soc = Soc::new("dups");
        soc.push_module(Module::builder("x").patterns(1).inputs(1).build());
        soc.push_module(Module::builder("x").patterns(1).inputs(1).build());
        let issues = validate_soc(&soc);
        assert!(issues.iter().any(|i| i.message.contains("duplicate")));
    }

    #[test]
    fn usable_soc_passes() {
        let mut soc = Soc::new("ok");
        soc.push_module(
            Module::builder("a")
                .patterns(2)
                .inputs(1)
                .outputs(1)
                .build(),
        );
        assert!(is_usable(&soc));
    }

    #[test]
    fn issue_display_mentions_module() {
        let issue = ValidationIssue {
            module: Some("core".into()),
            severity: Severity::Warning,
            message: "odd".into(),
        };
        assert!(issue.to_string().contains("core"));
        let soc_issue = ValidationIssue {
            module: None,
            severity: Severity::Error,
            message: "broken".into(),
        };
        assert!(soc_issue.to_string().contains("soc"));
    }
}
