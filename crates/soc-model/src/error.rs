//! Error types for the SOC data model.

use std::fmt;

/// Errors produced while constructing, parsing or validating SOC
/// descriptions.
///
/// # Example
///
/// ```
/// use soctest_soc_model::parser::parse_soc;
///
/// let err = parse_soc("module 1 core_without_header\nend\n").unwrap_err();
/// assert!(err.to_string().contains("soc"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocModelError {
    /// The `.soc` text could not be parsed.
    Parse {
        /// 1-based line number at which the problem was detected.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A module definition is structurally invalid (e.g. zero patterns and
    /// zero terminals).
    InvalidModule {
        /// Name of the offending module.
        module: String,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An SOC-level invariant is violated (e.g. duplicate module names).
    InvalidSoc {
        /// Name of the offending SOC.
        soc: String,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A named benchmark SOC does not exist in [`crate::benchmarks`].
    UnknownBenchmark {
        /// The requested benchmark name.
        name: String,
    },
}

impl fmt::Display for SocModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocModelError::Parse { line, message } => {
                write!(
                    f,
                    "parse error in soc description at line {line}: {message}"
                )
            }
            SocModelError::InvalidModule { module, message } => {
                write!(f, "invalid module `{module}`: {message}")
            }
            SocModelError::InvalidSoc { soc, message } => {
                write!(f, "invalid soc `{soc}`: {message}")
            }
            SocModelError::UnknownBenchmark { name } => {
                write!(f, "unknown benchmark soc `{name}`")
            }
        }
    }
}

impl std::error::Error for SocModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error_mentions_line() {
        let err = SocModelError::Parse {
            line: 7,
            message: "unexpected token".into(),
        };
        let text = err.to_string();
        assert!(text.contains("line 7"));
        assert!(text.contains("unexpected token"));
    }

    #[test]
    fn display_invalid_module_mentions_module_name() {
        let err = SocModelError::InvalidModule {
            module: "cpu".into(),
            message: "zero patterns".into(),
        };
        assert!(err.to_string().contains("cpu"));
    }

    #[test]
    fn display_unknown_benchmark() {
        let err = SocModelError::UnknownBenchmark { name: "x42".into() };
        assert!(err.to_string().contains("x42"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<SocModelError>();
    }
}
