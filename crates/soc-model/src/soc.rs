//! The System-on-Chip container type.

use crate::module::{Module, ModuleId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A System-on-Chip: a named collection of embedded [`Module`]s.
///
/// The module order is preserved; [`ModuleId`]s are dense indices into that
/// order and remain valid for the lifetime of the `Soc` value (modules can
/// only be appended, never removed).
///
/// # Example
///
/// ```
/// use soctest_soc_model::{Module, Soc};
///
/// let mut soc = Soc::new("demo");
/// let id = soc.push_module(Module::builder("c1").patterns(10).scan_chain(100).build());
/// assert_eq!(soc.module(id).name(), "c1");
/// assert_eq!(soc.num_modules(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Soc {
    name: String,
    modules: Vec<Module>,
}

impl Soc {
    /// Creates an empty SOC with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Soc {
            name: name.into(),
            modules: Vec::new(),
        }
    }

    /// Creates an SOC from a name and an iterator of modules.
    pub fn from_modules<I>(name: impl Into<String>, modules: I) -> Self
    where
        I: IntoIterator<Item = Module>,
    {
        Soc {
            name: name.into(),
            modules: modules.into_iter().collect(),
        }
    }

    /// The SOC name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a module and returns its id.
    pub fn push_module(&mut self, module: Module) -> ModuleId {
        self.modules.push(module);
        ModuleId(self.modules.len() - 1)
    }

    /// Number of modules in the SOC.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Whether the SOC contains no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Returns the module with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a module of this SOC.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.0]
    }

    /// Returns the module with the given id, or `None` if out of range.
    pub fn get_module(&self, id: ModuleId) -> Option<&Module> {
        self.modules.get(id.0)
    }

    /// Finds a module by name.
    pub fn module_by_name(&self, name: &str) -> Option<(ModuleId, &Module)> {
        self.modules
            .iter()
            .enumerate()
            .find(|(_, m)| m.name() == name)
            .map(|(i, m)| (ModuleId(i), m))
    }

    /// Iterates over `(ModuleId, &Module)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (ModuleId, &Module)> + '_ {
        self.modules
            .iter()
            .enumerate()
            .map(|(i, m)| (ModuleId(i), m))
    }

    /// The modules as a slice, in insertion order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// All module ids in insertion order.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> + '_ {
        (0..self.modules.len()).map(ModuleId)
    }

    /// Total number of test patterns over all modules.
    pub fn total_patterns(&self) -> u64 {
        self.modules.iter().map(Module::patterns).sum()
    }

    /// Total number of scan flip-flops over all modules.
    pub fn total_scan_flip_flops(&self) -> u64 {
        self.modules.iter().map(Module::total_scan_flip_flops).sum()
    }

    /// Total functional terminal count over all modules.
    pub fn total_functional_terminals(&self) -> u64 {
        self.modules.iter().map(Module::functional_terminals).sum()
    }

    /// Total test data volume in bits over all modules
    /// (see [`Module::test_data_volume_bits`]).
    pub fn total_test_data_volume_bits(&self) -> u64 {
        self.modules.iter().map(Module::test_data_volume_bits).sum()
    }

    /// Aggregated descriptive statistics.
    pub fn stats(&self) -> SocStats {
        SocStats {
            modules: self.num_modules(),
            total_patterns: self.total_patterns(),
            total_scan_flip_flops: self.total_scan_flip_flops(),
            total_functional_terminals: self.total_functional_terminals(),
            total_test_data_volume_bits: self.total_test_data_volume_bits(),
            max_module_scan_chains: self
                .modules
                .iter()
                .map(Module::num_scan_chains)
                .max()
                .unwrap_or(0),
            longest_scan_chain: self
                .modules
                .iter()
                .map(Module::longest_scan_chain)
                .max()
                .unwrap_or(0),
        }
    }
}

impl fmt::Display for Soc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "soc {} ({} modules)", self.name, self.modules.len())
    }
}

impl Extend<Module> for Soc {
    fn extend<T: IntoIterator<Item = Module>>(&mut self, iter: T) {
        self.modules.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Soc {
    type Item = (ModuleId, &'a Module);
    type IntoIter = std::vec::IntoIter<(ModuleId, &'a Module)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

/// Aggregated descriptive statistics of an [`Soc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocStats {
    /// Number of modules.
    pub modules: usize,
    /// Total number of test patterns.
    pub total_patterns: u64,
    /// Total number of scan flip-flops.
    pub total_scan_flip_flops: u64,
    /// Total number of functional terminals.
    pub total_functional_terminals: u64,
    /// Total test data volume in bits.
    pub total_test_data_volume_bits: u64,
    /// Largest per-module scan chain count.
    pub max_module_scan_chains: usize,
    /// Longest single scan chain in the design.
    pub longest_scan_chain: u64,
}

impl fmt::Display for SocStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} modules, {} patterns, {} scan FFs, {} terminals, {:.1} Mbit test data",
            self.modules,
            self.total_patterns,
            self.total_scan_flip_flops,
            self.total_functional_terminals,
            self.total_test_data_volume_bits as f64 / 1.0e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleKind;

    fn sample_soc() -> Soc {
        let mut soc = Soc::new("sample");
        soc.push_module(
            Module::builder("a")
                .patterns(10)
                .inputs(4)
                .outputs(4)
                .scan_chains([100u64, 90])
                .build(),
        );
        soc.push_module(
            Module::builder("b")
                .kind(ModuleKind::Memory)
                .patterns(200)
                .inputs(20)
                .outputs(16)
                .scan_chain(30)
                .build(),
        );
        soc
    }

    #[test]
    fn push_and_lookup() {
        let soc = sample_soc();
        assert_eq!(soc.num_modules(), 2);
        assert_eq!(soc.module(ModuleId(0)).name(), "a");
        assert_eq!(soc.module(ModuleId(1)).name(), "b");
        assert!(soc.get_module(ModuleId(2)).is_none());
    }

    #[test]
    fn module_by_name() {
        let soc = sample_soc();
        let (id, m) = soc.module_by_name("b").unwrap();
        assert_eq!(id, ModuleId(1));
        assert_eq!(m.patterns(), 200);
        assert!(soc.module_by_name("missing").is_none());
    }

    #[test]
    fn aggregate_statistics() {
        let soc = sample_soc();
        assert_eq!(soc.total_patterns(), 210);
        assert_eq!(soc.total_scan_flip_flops(), 220);
        assert_eq!(soc.total_functional_terminals(), 8 + 36);
        let stats = soc.stats();
        assert_eq!(stats.modules, 2);
        assert_eq!(stats.max_module_scan_chains, 2);
        assert_eq!(stats.longest_scan_chain, 100);
        assert!(stats.to_string().contains("2 modules"));
    }

    #[test]
    fn iteration_preserves_order() {
        let soc = sample_soc();
        let names: Vec<&str> = soc.iter().map(|(_, m)| m.name()).collect();
        assert_eq!(names, vec!["a", "b"]);
        let ids: Vec<ModuleId> = soc.module_ids().collect();
        assert_eq!(ids, vec![ModuleId(0), ModuleId(1)]);
    }

    #[test]
    fn from_modules_and_extend() {
        let mut soc = Soc::from_modules(
            "x",
            vec![Module::builder("m0").build(), Module::builder("m1").build()],
        );
        assert_eq!(soc.num_modules(), 2);
        soc.extend(vec![Module::builder("m2").build()]);
        assert_eq!(soc.num_modules(), 3);
    }

    #[test]
    fn empty_soc() {
        let soc = Soc::new("empty");
        assert!(soc.is_empty());
        assert_eq!(soc.stats().longest_scan_chain, 0);
        assert_eq!(soc.to_string(), "soc empty (0 modules)");
    }

    #[test]
    fn serde_round_trip() {
        let soc = sample_soc();
        let json = serde_json::to_string(&soc).unwrap();
        let back: Soc = serde_json::from_str(&json).unwrap();
        assert_eq!(soc, back);
    }
}
