//! Embedded benchmark SOCs.
//!
//! Four of the ITC'02 SOC Test Benchmarks used in Table 1 of the paper are
//! provided:
//!
//! * [`d695`] — the academic ten-core SOC, embedded with the module data
//!   published with the benchmark set,
//! * [`p22810`], [`p34392`], [`p93791`] — the three Philips SOCs. Their full
//!   module descriptions are Philips-internal; what is embedded here is a
//!   *reconstruction* calibrated against the published per-SOC statistics
//!   (module count, dominant cores, total test-data volume and the
//!   well-known TAM-width/test-time operating points). See `DESIGN.md`,
//!   "Substitutions".
//!
//! All constructors are deterministic and cheap; call them freely in tests
//! and benches.

use crate::module::{Module, ModuleKind};
use crate::soc::Soc;
use crate::SocModelError;

/// Names of all embedded benchmark SOCs, in the order used by Table 1.
pub const BENCHMARK_NAMES: [&str; 4] = ["d695", "p22810", "p34392", "p93791"];

/// Returns an embedded benchmark SOC by name.
///
/// # Errors
///
/// Returns [`SocModelError::UnknownBenchmark`] if `name` is not one of
/// [`BENCHMARK_NAMES`].
///
/// # Example
///
/// ```
/// use soctest_soc_model::benchmarks;
/// let soc = benchmarks::by_name("d695")?;
/// assert_eq!(soc.num_modules(), 10);
/// # Ok::<(), soctest_soc_model::SocModelError>(())
/// ```
pub fn by_name(name: &str) -> Result<Soc, SocModelError> {
    match name {
        "d695" => Ok(d695()),
        "p22810" => Ok(p22810()),
        "p34392" => Ok(p34392()),
        "p93791" => Ok(p93791()),
        other => Err(SocModelError::UnknownBenchmark {
            name: other.to_string(),
        }),
    }
}

/// All embedded benchmark SOCs in Table 1 order.
pub fn all() -> Vec<Soc> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| by_name(name).expect("embedded benchmark"))
        .collect()
}

/// Builds a module with `chains` balanced scan chains totalling `total_ff`
/// flip-flops (the first `total_ff % chains` chains are one flip-flop
/// longer).
#[allow(clippy::too_many_arguments)]
fn balanced_module(
    name: &str,
    kind: ModuleKind,
    patterns: u64,
    inputs: u32,
    outputs: u32,
    bidirs: u32,
    chains: usize,
    total_ff: u64,
) -> Module {
    let mut builder = Module::builder(name)
        .kind(kind)
        .patterns(patterns)
        .inputs(inputs)
        .outputs(outputs)
        .bidirs(bidirs);
    if chains > 0 {
        let base = total_ff / chains as u64;
        let extra = (total_ff % chains as u64) as usize;
        let lengths = (0..chains).map(|i| base + u64::from(i < extra));
        builder = builder.scan_chains(lengths);
    }
    builder.build()
}

/// The ITC'02 `d695` benchmark SOC: ten ISCAS-85/89 cores.
///
/// Module parameters follow the published benchmark description; scan
/// flip-flops are distributed over balanced chains.
pub fn d695() -> Soc {
    use ModuleKind::Logic;
    let modules = vec![
        balanced_module("c6288", Logic, 12, 32, 32, 0, 0, 0),
        balanced_module("c7552", Logic, 73, 207, 108, 0, 0, 0),
        balanced_module("s838", Logic, 75, 34, 1, 0, 1, 32),
        balanced_module("s9234", Logic, 105, 36, 39, 0, 4, 228),
        balanced_module("s38584", Logic, 110, 38, 304, 0, 32, 1426),
        balanced_module("s13207", Logic, 234, 62, 152, 0, 16, 638),
        balanced_module("s15850", Logic, 95, 77, 150, 0, 16, 534),
        balanced_module("s5378", Logic, 97, 35, 49, 0, 4, 179),
        balanced_module("s35932", Logic, 12, 35, 320, 0, 32, 1728),
        balanced_module("s38417", Logic, 68, 28, 106, 0, 32, 1636),
    ];
    Soc::from_modules("d695", modules)
}

/// Reconstruction of the ITC'02 `p22810` benchmark SOC (28 modules).
///
/// Anchored on the handful of dominant cores that determine the TAM design;
/// the remaining filler cores reproduce the long tail of small cores in the
/// original benchmark.
pub fn p22810() -> Soc {
    use ModuleKind::{Logic, Memory};
    let mut modules = vec![
        balanced_module("p22810_c01", Logic, 62, 210, 190, 10, 24, 20_800),
        balanced_module("p22810_c11", Logic, 126, 160, 140, 0, 20, 9_050),
        balanced_module("p22810_c21", Logic, 187, 100, 110, 0, 16, 5_400),
        balanced_module("p22810_c05", Logic, 465, 80, 70, 0, 8, 1_720),
        balanced_module("p22810_c12", Logic, 145, 90, 90, 0, 12, 4_100),
        balanced_module("p22810_c19", Logic, 430, 40, 50, 0, 4, 700),
        balanced_module("p22810_c24", Memory, 3_200, 30, 20, 0, 1, 96),
        balanced_module("p22810_c26", Memory, 2_600, 28, 18, 0, 1, 80),
    ];
    // Twenty filler cores with a deterministic size spread.
    for i in 0..20 {
        let patterns = 110 + 37 * (i as u64 % 7);
        let ff = 320 + 90 * (i as u64 % 5);
        let chains = 2 + (i % 3);
        let io = 24 + 4 * (i as u32 % 6);
        modules.push(balanced_module(
            &format!("p22810_f{i:02}"),
            Logic,
            patterns,
            io,
            io,
            0,
            chains,
            ff,
        ));
    }
    Soc::from_modules("p22810", modules)
}

/// Reconstruction of the ITC'02 `p34392` benchmark SOC (19 modules).
///
/// The benchmark is dominated by one very large core (core 18 in the
/// original numbering) whose test-time floor limits the whole SOC; the
/// reconstruction keeps that property.
pub fn p34392() -> Soc {
    use ModuleKind::{Logic, Memory};
    let mut modules = vec![
        balanced_module("p34392_c18", Logic, 745, 320, 300, 20, 24, 14_800),
        balanced_module("p34392_c02", Logic, 210, 165, 175, 0, 20, 6_800),
        balanced_module("p34392_c10", Logic, 336, 120, 110, 0, 16, 4_000),
        balanced_module("p34392_c05", Logic, 420, 70, 80, 0, 8, 1_900),
        balanced_module("p34392_c15", Memory, 4_100, 36, 24, 0, 1, 110),
        balanced_module("p34392_c16", Memory, 3_300, 30, 22, 0, 1, 90),
    ];
    for i in 0..13 {
        let patterns = 140 + 41 * (i as u64 % 6);
        let ff = 420 + 110 * (i as u64 % 4);
        let chains = 2 + (i % 4);
        let io = 28 + 5 * (i as u32 % 5);
        modules.push(balanced_module(
            &format!("p34392_f{i:02}"),
            Logic,
            patterns,
            io,
            io,
            0,
            chains,
            ff,
        ));
    }
    Soc::from_modules("p34392", modules)
}

/// Reconstruction of the ITC'02 `p93791` benchmark SOC (32 modules).
///
/// The largest of the ITC'02 SOCs; dominated by three cores of roughly
/// five megabits of test data each.
pub fn p93791() -> Soc {
    use ModuleKind::{Logic, Memory};
    let mut modules = vec![
        balanced_module("p93791_c06", Logic, 218, 220, 200, 0, 46, 23_800),
        balanced_module("p93791_c20", Logic, 210, 190, 190, 0, 44, 23_100),
        balanced_module("p93791_c27", Logic, 916, 130, 120, 0, 20, 5_900),
        balanced_module("p93791_c01", Logic, 409, 100, 100, 0, 12, 5_100),
        balanced_module("p93791_c11", Logic, 187, 150, 160, 0, 24, 11_000),
        balanced_module("p93791_c17", Logic, 216, 80, 70, 0, 10, 4_500),
        balanced_module("p93791_c23", Logic, 260, 50, 50, 0, 8, 3_000),
        balanced_module("p93791_c29", Logic, 420, 60, 60, 0, 6, 2_600),
        balanced_module("p93791_c13", Memory, 5_200, 40, 30, 0, 1, 120),
        balanced_module("p93791_c19", Memory, 4_400, 34, 26, 0, 1, 100),
    ];
    for i in 0..22 {
        let patterns = 130 + 29 * (i as u64 % 8);
        let ff = 560 + 130 * (i as u64 % 6);
        let chains = 2 + (i % 5);
        let io = 30 + 6 * (i as u32 % 5);
        modules.push(balanced_module(
            &format!("p93791_f{i:02}"),
            Logic,
            patterns,
            io,
            io,
            0,
            chains,
            ff,
        ));
    }
    Soc::from_modules("p93791", modules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_usable;

    #[test]
    fn d695_has_ten_modules() {
        let soc = d695();
        assert_eq!(soc.num_modules(), 10);
        assert_eq!(soc.name(), "d695");
    }

    #[test]
    fn d695_module_data_matches_published_values() {
        let soc = d695();
        let (_, s38584) = soc.module_by_name("s38584").unwrap();
        assert_eq!(s38584.patterns(), 110);
        assert_eq!(s38584.num_scan_chains(), 32);
        assert_eq!(s38584.total_scan_flip_flops(), 1426);
        let (_, c6288) = soc.module_by_name("c6288").unwrap();
        assert_eq!(c6288.num_scan_chains(), 0);
        assert_eq!(c6288.inputs(), 32);
    }

    #[test]
    fn d695_total_volume_is_in_published_ballpark() {
        // The well-known operating point of d695 is roughly 42k cycles on a
        // 16-chain-wide architecture, i.e. ~0.65M cycle*chains of data.
        let volume: u64 = d695()
            .modules()
            .iter()
            .map(|m| m.patterns() * (m.total_scan_flip_flops() + m.functional_terminals()))
            .sum();
        assert!(volume > 500_000, "volume {volume} too small");
        assert!(volume < 900_000, "volume {volume} too large");
    }

    #[test]
    fn philips_reconstructions_have_published_module_counts() {
        assert_eq!(p22810().num_modules(), 28);
        assert_eq!(p34392().num_modules(), 19);
        assert_eq!(p93791().num_modules(), 32);
    }

    #[test]
    fn reconstruction_volumes_are_ordered_like_the_originals() {
        let vol = |soc: &Soc| soc.total_test_data_volume_bits();
        let d = vol(&d695());
        let p22 = vol(&p22810());
        let p34 = vol(&p34392());
        let p93 = vol(&p93791());
        assert!(d < p22, "d695 {d} should be smaller than p22810 {p22}");
        assert!(
            p22 < p34,
            "p22810 {p22} should be smaller than p34392 {p34}"
        );
        assert!(
            p34 < p93,
            "p34392 {p34} should be smaller than p93791 {p93}"
        );
    }

    #[test]
    fn all_benchmarks_are_usable() {
        for soc in all() {
            assert!(is_usable(&soc), "benchmark {} fails validation", soc.name());
        }
    }

    #[test]
    fn by_name_round_trips_and_rejects_unknown() {
        for name in BENCHMARK_NAMES {
            assert_eq!(by_name(name).unwrap().name(), name);
        }
        assert!(by_name("p12345").is_err());
    }

    #[test]
    fn benchmarks_are_deterministic() {
        assert_eq!(d695(), d695());
        assert_eq!(p93791(), p93791());
    }

    #[test]
    fn module_names_are_unique_within_each_benchmark() {
        for soc in all() {
            let mut names: Vec<&str> = soc.modules().iter().map(Module::name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), soc.num_modules());
        }
    }
}
