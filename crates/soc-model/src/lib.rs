//! Data model for System-on-Chip (SOC) test descriptions.
//!
//! This crate provides the input side of the test-infrastructure design flow
//! described in Goel & Marinissen, *"On-Chip Test Infrastructure Design for
//! Optimal Multi-Site Testing of System Chips"* (DATE 2005): an SOC is a set
//! of modules (embedded cores), and each module is characterised by its test
//! pattern count, its functional terminal counts (inputs, outputs,
//! bidirectionals) and its internal scan chains.
//!
//! The crate contains:
//!
//! * [`Module`], [`ScanChain`] and [`Soc`] — the core data model,
//! * [`parser`] / [`writer`] — a line-oriented text format (`.soc`) closely
//!   modelled on the ITC'02 SOC Test Benchmarks information content,
//! * [`benchmarks`] — embedded benchmark SOCs (d695 plus reconstructions of
//!   the Philips ITC'02 SOCs p22810, p34392 and p93791),
//! * [`synthetic`] — deterministic synthetic SOC generators, including the
//!   PNX8550-like SOC used throughout the paper's evaluation section,
//! * [`validate`] — structural validation of SOC descriptions.
//!
//! # Example
//!
//! ```
//! use soctest_soc_model::{Module, Soc};
//!
//! let mut soc = Soc::new("example");
//! soc.push_module(
//!     Module::builder("cpu")
//!         .patterns(120)
//!         .inputs(64)
//!         .outputs(64)
//!         .scan_chains([500, 500, 480, 480])
//!         .build(),
//! );
//! assert_eq!(soc.num_modules(), 1);
//! assert!(soc.total_scan_flip_flops() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmarks;
pub mod error;
pub mod module;
pub mod parser;
pub mod soc;
pub mod synthetic;
pub mod validate;
pub mod writer;

pub use error::SocModelError;
pub use module::{Module, ModuleBuilder, ModuleId, ModuleKind, ScanChain};
pub use soc::{Soc, SocStats};
pub use validate::{validate_module, validate_soc, ValidationIssue};
