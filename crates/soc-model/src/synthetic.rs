//! Deterministic synthetic SOC generators.
//!
//! Two uses:
//!
//! * [`pnx8550_like`] produces the stand-in for the Philips PNX8550 "monster
//!   chip" evaluated throughout Section 7 of the paper. The real SOC's test
//!   data is proprietary; the stand-in reproduces its published module
//!   counts (62 logic cores + 212 embedded memories) and is calibrated so
//!   that on the paper's target ATE (512 channels x 7 M vectors at 5 MHz)
//!   the optimizer lands in the same operating regime (manufacturing test
//!   time around 1.4 s, roughly a hundred channels per site, optimal
//!   multi-site in the mid single digits without stimulus broadcast).
//! * [`SyntheticSocSpec`] generates families of random-but-reproducible SOCs
//!   for stress tests and property-based tests.

use crate::module::{Module, ModuleKind};
use crate::soc::Soc;
use rand::distributions::{Distribution, Uniform};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Specification for a randomly generated, reproducible SOC.
///
/// All ranges are inclusive. The same spec and seed always produce the same
/// SOC.
///
/// # Example
///
/// ```
/// use soctest_soc_model::synthetic::SyntheticSocSpec;
///
/// let soc = SyntheticSocSpec::new("fuzz", 12).seed(7).generate();
/// assert_eq!(soc.num_modules(), 12);
/// assert_eq!(soc, SyntheticSocSpec::new("fuzz", 12).seed(7).generate());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticSocSpec {
    name: String,
    modules: usize,
    seed: u64,
    patterns: (u64, u64),
    scan_chains: (usize, usize),
    chain_length: (u64, u64),
    terminals: (u32, u32),
    memory_fraction: f64,
}

impl SyntheticSocSpec {
    /// Creates a spec for an SOC with the given name and module count,
    /// using moderate default parameter ranges.
    pub fn new(name: impl Into<String>, modules: usize) -> Self {
        SyntheticSocSpec {
            name: name.into(),
            modules,
            seed: 0,
            patterns: (20, 400),
            scan_chains: (1, 16),
            chain_length: (20, 400),
            terminals: (8, 120),
            memory_fraction: 0.0,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the inclusive range of per-module pattern counts.
    pub fn patterns(mut self, min: u64, max: u64) -> Self {
        self.patterns = (min, max);
        self
    }

    /// Sets the inclusive range of per-module scan chain counts.
    pub fn scan_chains(mut self, min: usize, max: usize) -> Self {
        self.scan_chains = (min, max);
        self
    }

    /// Sets the inclusive range of scan chain lengths.
    pub fn chain_length(mut self, min: u64, max: u64) -> Self {
        self.chain_length = (min, max);
        self
    }

    /// Sets the inclusive range of functional terminal counts (split evenly
    /// between inputs and outputs).
    pub fn terminals(mut self, min: u32, max: u32) -> Self {
        self.terminals = (min, max);
        self
    }

    /// Sets the fraction of modules generated as single-chain memories.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `0.0..=1.0`.
    pub fn memory_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "memory fraction {fraction} out of range"
        );
        self.memory_fraction = fraction;
        self
    }

    /// Generates the SOC described by this spec.
    pub fn generate(&self) -> Soc {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let patterns =
            Uniform::new_inclusive(self.patterns.0, self.patterns.1.max(self.patterns.0));
        let chains = Uniform::new_inclusive(
            self.scan_chains.0,
            self.scan_chains.1.max(self.scan_chains.0),
        );
        let length = Uniform::new_inclusive(
            self.chain_length.0,
            self.chain_length.1.max(self.chain_length.0),
        );
        let terminals =
            Uniform::new_inclusive(self.terminals.0, self.terminals.1.max(self.terminals.0));

        let mut soc = Soc::new(self.name.clone());
        for index in 0..self.modules {
            let is_memory = rng.gen_bool(self.memory_fraction);
            let io = terminals.sample(&mut rng);
            let module = if is_memory {
                Module::builder(format!("{}_mem{index:03}", self.name))
                    .kind(ModuleKind::Memory)
                    .patterns(patterns.sample(&mut rng) * 8)
                    .inputs(io / 2)
                    .outputs(io - io / 2)
                    .scan_chain(length.sample(&mut rng))
                    .build()
            } else {
                let chain_count = chains.sample(&mut rng);
                Module::builder(format!("{}_core{index:03}", self.name))
                    .kind(ModuleKind::Logic)
                    .patterns(patterns.sample(&mut rng))
                    .inputs(io / 2)
                    .outputs(io - io / 2)
                    .scan_chains((0..chain_count).map(|_| length.sample(&mut rng)))
                    .build()
            };
            soc.push_module(module);
        }
        soc
    }
}

/// Parameters of the PNX8550 stand-in; exposed so experiments can scale the
/// design up or down while keeping its composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pnx8550Config {
    /// Number of scan-tested logic cores (62 on the real SOC).
    pub logic_modules: usize,
    /// Number of embedded memories (212 on the real SOC).
    pub memory_modules: usize,
    /// Global scaling factor on test data volume; 1.0 reproduces the paper's
    /// operating regime.
    pub volume_scale: f64,
}

impl Default for Pnx8550Config {
    fn default() -> Self {
        Pnx8550Config {
            logic_modules: 62,
            memory_modules: 212,
            volume_scale: 1.0,
        }
    }
}

/// Generates the PNX8550-like SOC used by the Section 7 experiments, with
/// the default configuration.
///
/// The generator is fully deterministic.
///
/// # Example
///
/// ```
/// use soctest_soc_model::synthetic::pnx8550_like;
/// let soc = pnx8550_like();
/// assert_eq!(soc.num_modules(), 62 + 212);
/// ```
pub fn pnx8550_like() -> Soc {
    pnx8550_with(Pnx8550Config::default())
}

/// Generates a PNX8550-like SOC with an explicit configuration.
///
/// # Panics
///
/// Panics if `config.volume_scale` is not finite and positive.
pub fn pnx8550_with(config: Pnx8550Config) -> Soc {
    assert!(
        config.volume_scale.is_finite() && config.volume_scale > 0.0,
        "volume_scale must be positive, got {}",
        config.volume_scale
    );
    let mut rng = ChaCha8Rng::seed_from_u64(0x8550);
    let scale = config.volume_scale;
    let mut soc = Soc::new("pnx8550_like");

    // --- Logic cores -----------------------------------------------------
    // A handful of large media-processing cores plus a long tail of control
    // logic. Pattern counts and scan sizes are drawn from deterministic
    // ranges; the totals put the width-elastic share of the SOC test data
    // at roughly 150 M cycle*chains (before scaling).
    for index in 0..config.logic_modules {
        let class = index % 10;
        // Three size classes: 10% very large, 30% medium, 60% small.
        let (patterns, chains, total_ff, io): (u64, usize, u64, u32) = if class == 0 {
            (
                rng.gen_range(300..=450),
                rng.gen_range(24..=40),
                rng.gen_range(6_000..=9_000),
                rng.gen_range(200..=400),
            )
        } else if class < 4 {
            (
                rng.gen_range(150..=260),
                rng.gen_range(8..=20),
                rng.gen_range(2_000..=3_500),
                rng.gen_range(80..=200),
            )
        } else {
            (
                rng.gen_range(60..=160),
                rng.gen_range(2..=8),
                rng.gen_range(500..=1_500),
                rng.gen_range(30..=90),
            )
        };
        let total_ff = ((total_ff as f64) * scale).round().max(1.0) as u64;
        soc.push_module(balanced_logic(
            &format!("logic{index:02}"),
            patterns,
            io,
            chains,
            total_ff,
        ));
    }

    // --- Embedded memories -----------------------------------------------
    // 212 memories in three size classes. The mid-size and large memories
    // have fixed, width-inelastic test lengths that are a sizeable fraction
    // of the vector memory depth; the resulting bin-packing waste at shallow
    // depths is what makes deeper vector memory disproportionately valuable
    // (Fig. 6(b)) and what separates the throughput-optimal site count from
    // the maximum site count (Fig. 5).
    for index in 0..config.memory_modules {
        let class = index % 10;
        let (patterns, chain_len): (u64, u64) = if class == 0 {
            // ~10% large memories: test length (1 + len) * p in 3.2M..4.0M cycles.
            let len = rng.gen_range(1_900..=2_300);
            let p = rng.gen_range(1_700..=1_750);
            (p, len)
        } else if class <= 3 {
            // ~30% mid-size memories: 2.5M..3.3M cycles.
            let len = rng.gen_range(1_550..=1_950);
            let p = rng.gen_range(1_600..=1_700);
            (p, len)
        } else {
            // The remaining 60% are small register files: 15k..50k cycles.
            let len = rng.gen_range(100..=250);
            let p = rng.gen_range(150..=200);
            (p, len)
        };
        let chain_len = ((chain_len as f64) * scale).round().max(1.0) as u64;
        let io = rng.gen_range(20..=48);
        soc.push_module(
            Module::builder(format!("mem{index:03}"))
                .kind(ModuleKind::Memory)
                .patterns(patterns)
                .inputs(io / 2)
                .outputs(io - io / 2)
                .scan_chain(chain_len)
                .build(),
        );
    }
    soc
}

fn balanced_logic(name: &str, patterns: u64, io: u32, chains: usize, total_ff: u64) -> Module {
    let base = total_ff / chains as u64;
    let extra = (total_ff % chains as u64) as usize;
    Module::builder(name)
        .kind(ModuleKind::Logic)
        .patterns(patterns)
        .inputs(io / 2)
        .outputs(io - io / 2)
        .scan_chains((0..chains).map(|i| base + u64::from(i < extra)))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_usable;

    #[test]
    fn pnx8550_like_module_counts_match_paper() {
        let soc = pnx8550_like();
        let logic = soc
            .modules()
            .iter()
            .filter(|m| m.kind() == ModuleKind::Logic)
            .count();
        let memory = soc
            .modules()
            .iter()
            .filter(|m| m.kind() == ModuleKind::Memory)
            .count();
        assert_eq!(logic, 62);
        assert_eq!(memory, 212);
    }

    #[test]
    fn pnx8550_like_is_deterministic() {
        assert_eq!(pnx8550_like(), pnx8550_like());
    }

    #[test]
    fn pnx8550_like_is_usable() {
        assert!(is_usable(&pnx8550_like()));
    }

    #[test]
    fn pnx8550_like_volume_is_monster_chip_scale() {
        // The stand-in should carry hundreds of megabits of test data, far
        // more than the ITC'02 benchmarks.
        let soc = pnx8550_like();
        let volume = soc.total_test_data_volume_bits();
        assert!(
            volume > 200_000_000,
            "volume {volume} below monster-chip scale"
        );
        assert!(volume < 2_000_000_000, "volume {volume} implausibly large");
    }

    #[test]
    fn volume_scale_scales_the_design() {
        let small = pnx8550_with(Pnx8550Config {
            volume_scale: 0.5,
            ..Pnx8550Config::default()
        });
        let full = pnx8550_like();
        assert!(small.total_test_data_volume_bits() < full.total_test_data_volume_bits());
    }

    #[test]
    #[should_panic(expected = "volume_scale")]
    fn invalid_volume_scale_panics() {
        let _ = pnx8550_with(Pnx8550Config {
            volume_scale: 0.0,
            ..Pnx8550Config::default()
        });
    }

    #[test]
    fn synthetic_spec_is_reproducible_and_respects_count() {
        let a = SyntheticSocSpec::new("s", 25).seed(42).generate();
        let b = SyntheticSocSpec::new("s", 25).seed(42).generate();
        let c = SyntheticSocSpec::new("s", 25).seed(43).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_modules(), 25);
    }

    #[test]
    fn synthetic_memory_fraction_produces_memories() {
        let soc = SyntheticSocSpec::new("m", 40)
            .seed(1)
            .memory_fraction(1.0)
            .generate();
        assert!(soc.modules().iter().all(|m| m.kind() == ModuleKind::Memory));
    }

    #[test]
    #[should_panic(expected = "memory fraction")]
    fn invalid_memory_fraction_panics() {
        let _ = SyntheticSocSpec::new("bad", 4).memory_fraction(1.5);
    }

    #[test]
    fn synthetic_socs_are_usable() {
        let soc = SyntheticSocSpec::new("u", 30)
            .seed(9)
            .memory_fraction(0.3)
            .generate();
        assert!(is_usable(&soc));
    }
}
