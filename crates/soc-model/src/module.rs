//! Embedded module (core) descriptions.
//!
//! A [`Module`] corresponds to one embedded core of a core-based SOC and
//! carries exactly the parameters used by the wrapper / TAM optimization of
//! the paper (Problem 1, Section 5): the number of test patterns `p(m)`, the
//! functional input/output/bidirectional terminal counts `i(m)`, `o(m)`,
//! `b(m)`, and the length of every internal scan chain `l(m, r)`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a module within a [`crate::Soc`].
///
/// Module ids are dense indices assigned in insertion order; they are used by
/// the architecture-design crates to refer back to modules without holding
/// references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(pub usize);

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<usize> for ModuleId {
    fn from(value: usize) -> Self {
        ModuleId(value)
    }
}

/// One internal scan chain of a module, characterised by its length in
/// flip-flops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ScanChain {
    /// Number of flip-flops on the chain.
    pub length: u64,
}

impl ScanChain {
    /// Creates a scan chain with the given number of flip-flops.
    ///
    /// # Example
    ///
    /// ```
    /// use soctest_soc_model::ScanChain;
    /// let c = ScanChain::new(128);
    /// assert_eq!(c.length, 128);
    /// ```
    pub fn new(length: u64) -> Self {
        ScanChain { length }
    }
}

impl From<u64> for ScanChain {
    fn from(length: u64) -> Self {
        ScanChain { length }
    }
}

/// Coarse classification of a module, used by the synthetic SOC generators
/// and reporting. The optimization algorithms themselves treat all modules
/// uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ModuleKind {
    /// Scan-tested digital logic core.
    #[default]
    Logic,
    /// Embedded memory tested through the test access infrastructure.
    Memory,
    /// Hierarchical or black-box core with a fixed external test.
    BlackBox,
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleKind::Logic => write!(f, "logic"),
            ModuleKind::Memory => write!(f, "memory"),
            ModuleKind::BlackBox => write!(f, "blackbox"),
        }
    }
}

/// An embedded core and its test parameters.
///
/// Construct modules through [`Module::builder`]; the builder validates
/// nothing by itself, see [`crate::validate::validate_module`] for structural
/// checks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Human-readable module name (unique within an SOC).
    name: String,
    /// Coarse module classification.
    kind: ModuleKind,
    /// Number of test patterns `p(m)`.
    patterns: u64,
    /// Number of functional input terminals `i(m)`.
    inputs: u32,
    /// Number of functional output terminals `o(m)`.
    outputs: u32,
    /// Number of functional bidirectional terminals `b(m)`.
    bidirs: u32,
    /// Internal scan chains with their lengths.
    scan_chains: Vec<ScanChain>,
}

impl Module {
    /// Starts building a module with the given name.
    ///
    /// # Example
    ///
    /// ```
    /// use soctest_soc_model::Module;
    /// let m = Module::builder("uart").patterns(10).inputs(8).outputs(8).build();
    /// assert_eq!(m.name(), "uart");
    /// ```
    pub fn builder(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder::new(name)
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The coarse module classification.
    pub fn kind(&self) -> ModuleKind {
        self.kind
    }

    /// Number of test patterns `p(m)`.
    pub fn patterns(&self) -> u64 {
        self.patterns
    }

    /// Number of functional input terminals `i(m)`.
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Number of functional output terminals `o(m)`.
    pub fn outputs(&self) -> u32 {
        self.outputs
    }

    /// Number of functional bidirectional terminals `b(m)`.
    pub fn bidirs(&self) -> u32 {
        self.bidirs
    }

    /// The internal scan chains.
    pub fn scan_chains(&self) -> &[ScanChain] {
        &self.scan_chains
    }

    /// Number of internal scan chains `s(m)`.
    pub fn num_scan_chains(&self) -> usize {
        self.scan_chains.len()
    }

    /// Total number of scan flip-flops over all internal chains.
    ///
    /// # Example
    ///
    /// ```
    /// use soctest_soc_model::Module;
    /// let m = Module::builder("core").scan_chains([10, 20, 30]).build();
    /// assert_eq!(m.total_scan_flip_flops(), 60);
    /// ```
    pub fn total_scan_flip_flops(&self) -> u64 {
        self.scan_chains.iter().map(|c| c.length).sum()
    }

    /// Length of the longest internal scan chain (0 if the module has none).
    pub fn longest_scan_chain(&self) -> u64 {
        self.scan_chains.iter().map(|c| c.length).max().unwrap_or(0)
    }

    /// Total number of functional terminals that need wrapper cells
    /// (`i + o + b`).
    pub fn functional_terminals(&self) -> u64 {
        u64::from(self.inputs) + u64::from(self.outputs) + u64::from(self.bidirs)
    }

    /// Number of wrapper *input* cells: functional inputs plus
    /// bidirectionals (a bidirectional terminal needs a cell on both the
    /// stimulus and the response side).
    pub fn wrapper_input_cells(&self) -> u64 {
        u64::from(self.inputs) + u64::from(self.bidirs)
    }

    /// Number of wrapper *output* cells: functional outputs plus
    /// bidirectionals.
    pub fn wrapper_output_cells(&self) -> u64 {
        u64::from(self.outputs) + u64::from(self.bidirs)
    }

    /// Total number of scan-accessible bits on the stimulus side: scan
    /// flip-flops plus wrapper input cells.
    pub fn total_scan_in_bits(&self) -> u64 {
        self.total_scan_flip_flops() + self.wrapper_input_cells()
    }

    /// Total number of scan-accessible bits on the response side: scan
    /// flip-flops plus wrapper output cells.
    pub fn total_scan_out_bits(&self) -> u64 {
        self.total_scan_flip_flops() + self.wrapper_output_cells()
    }

    /// A simple measure of the module's test data volume in bits: the number
    /// of stimulus bits plus response bits shifted over all patterns.
    ///
    /// This is the quantity that the theoretical channel lower bound of
    /// Table 1 is based on.
    pub fn test_data_volume_bits(&self) -> u64 {
        (self.total_scan_in_bits() + self.total_scan_out_bits()) * self.patterns
    }

    /// Lower bound on the test application time of this module in clock
    /// cycles, reached when every scan element sits in its own wrapper
    /// chain: `(1 + longest chain) * p + longest chain` where the relevant
    /// chain length degenerates to the longest internal scan chain (or 1 for
    /// purely combinational cores with functional terminals).
    pub fn test_time_floor_cycles(&self) -> u64 {
        let longest = self
            .longest_scan_chain()
            .max(u64::from((self.functional_terminals() > 0) as u32));
        (1 + longest) * self.patterns + longest
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: p={} i={} o={} b={} scan={}x({} ff)",
            self.name,
            self.kind,
            self.patterns,
            self.inputs,
            self.outputs,
            self.bidirs,
            self.scan_chains.len(),
            self.total_scan_flip_flops()
        )
    }
}

/// Builder for [`Module`].
///
/// All parameters default to zero / empty, matching a trivially empty core.
#[derive(Debug, Clone)]
pub struct ModuleBuilder {
    name: String,
    kind: ModuleKind,
    patterns: u64,
    inputs: u32,
    outputs: u32,
    bidirs: u32,
    scan_chains: Vec<ScanChain>,
}

impl ModuleBuilder {
    /// Creates a builder for a module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            kind: ModuleKind::Logic,
            patterns: 0,
            inputs: 0,
            outputs: 0,
            bidirs: 0,
            scan_chains: Vec::new(),
        }
    }

    /// Sets the coarse module classification.
    pub fn kind(mut self, kind: ModuleKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the number of test patterns.
    pub fn patterns(mut self, patterns: u64) -> Self {
        self.patterns = patterns;
        self
    }

    /// Sets the number of functional input terminals.
    pub fn inputs(mut self, inputs: u32) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the number of functional output terminals.
    pub fn outputs(mut self, outputs: u32) -> Self {
        self.outputs = outputs;
        self
    }

    /// Sets the number of functional bidirectional terminals.
    pub fn bidirs(mut self, bidirs: u32) -> Self {
        self.bidirs = bidirs;
        self
    }

    /// Replaces the scan chains with chains of the given lengths.
    pub fn scan_chains<I>(mut self, lengths: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<ScanChain>,
    {
        self.scan_chains = lengths.into_iter().map(Into::into).collect();
        self
    }

    /// Adds `count` scan chains of identical `length`.
    pub fn balanced_scan_chains(mut self, count: usize, length: u64) -> Self {
        self.scan_chains
            .extend(std::iter::repeat_n(ScanChain::new(length), count));
        self
    }

    /// Adds a single scan chain of the given length.
    pub fn scan_chain(mut self, length: u64) -> Self {
        self.scan_chains.push(ScanChain::new(length));
        self
    }

    /// Finishes building the module.
    pub fn build(self) -> Module {
        Module {
            name: self.name,
            kind: self.kind,
            patterns: self.patterns,
            inputs: self.inputs,
            outputs: self.outputs,
            bidirs: self.bidirs,
            scan_chains: self.scan_chains,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        Module::builder("core0")
            .kind(ModuleKind::Logic)
            .patterns(100)
            .inputs(10)
            .outputs(20)
            .bidirs(5)
            .scan_chains([50u64, 40, 30])
            .build()
    }

    #[test]
    fn builder_sets_all_fields() {
        let m = sample();
        assert_eq!(m.name(), "core0");
        assert_eq!(m.kind(), ModuleKind::Logic);
        assert_eq!(m.patterns(), 100);
        assert_eq!(m.inputs(), 10);
        assert_eq!(m.outputs(), 20);
        assert_eq!(m.bidirs(), 5);
        assert_eq!(m.num_scan_chains(), 3);
    }

    #[test]
    fn scan_statistics() {
        let m = sample();
        assert_eq!(m.total_scan_flip_flops(), 120);
        assert_eq!(m.longest_scan_chain(), 50);
    }

    #[test]
    fn terminal_and_cell_counts() {
        let m = sample();
        assert_eq!(m.functional_terminals(), 35);
        assert_eq!(m.wrapper_input_cells(), 15);
        assert_eq!(m.wrapper_output_cells(), 25);
        assert_eq!(m.total_scan_in_bits(), 135);
        assert_eq!(m.total_scan_out_bits(), 145);
    }

    #[test]
    fn test_data_volume() {
        let m = sample();
        assert_eq!(m.test_data_volume_bits(), (135 + 145) * 100);
    }

    #[test]
    fn test_time_floor_uses_longest_chain() {
        let m = sample();
        assert_eq!(m.test_time_floor_cycles(), (1 + 50) * 100 + 50);
    }

    #[test]
    fn test_time_floor_for_combinational_core() {
        let m = Module::builder("comb")
            .patterns(12)
            .inputs(32)
            .outputs(32)
            .build();
        // No scan chains: the floor degenerates to one cycle of load per
        // pattern through a single wrapper cell.
        assert_eq!(m.test_time_floor_cycles(), 2 * 12 + 1);
    }

    #[test]
    fn empty_module_has_zero_stats() {
        let m = Module::builder("empty").build();
        assert_eq!(m.total_scan_flip_flops(), 0);
        assert_eq!(m.longest_scan_chain(), 0);
        assert_eq!(m.functional_terminals(), 0);
        assert_eq!(m.test_data_volume_bits(), 0);
    }

    #[test]
    fn balanced_scan_chains_helper() {
        let m = Module::builder("mem").balanced_scan_chains(4, 25).build();
        assert_eq!(m.num_scan_chains(), 4);
        assert_eq!(m.total_scan_flip_flops(), 100);
    }

    #[test]
    fn display_contains_name_and_counts() {
        let text = sample().to_string();
        assert!(text.contains("core0"));
        assert!(text.contains("p=100"));
    }

    #[test]
    fn module_id_display_and_conversion() {
        let id: ModuleId = 7.into();
        assert_eq!(id, ModuleId(7));
        assert_eq!(id.to_string(), "m7");
    }

    #[test]
    fn module_kind_display() {
        assert_eq!(ModuleKind::Logic.to_string(), "logic");
        assert_eq!(ModuleKind::Memory.to_string(), "memory");
        assert_eq!(ModuleKind::BlackBox.to_string(), "blackbox");
    }

    #[test]
    fn serde_round_trip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: Module = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
