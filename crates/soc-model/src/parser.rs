//! Parser for the line-oriented `.soc` text format.
//!
//! The format carries exactly the information content of the ITC'02 SOC Test
//! Benchmarks that the optimization algorithms need. It is deliberately
//! simple so that benchmark SOCs can be reviewed and edited by hand:
//!
//! ```text
//! # comments start with '#'
//! soc d695
//! module 1 c6288
//!   kind logic
//!   patterns 12
//!   inputs 32
//!   outputs 32
//!   bidirs 0
//!   scanchains
//! end
//! module 2 s838
//!   patterns 75
//!   inputs 34
//!   outputs 1
//!   scanchains 32
//! end
//! ```
//!
//! * `soc <name>` must appear before the first module.
//! * Each `module <index> <name>` block is terminated by `end`; the index is
//!   informational only (modules are numbered by order of appearance).
//! * `scanchains` is followed by zero or more chain lengths on the same
//!   line; the directive may be repeated to split long lists across lines.
//! * `kind` is one of `logic`, `memory`, `blackbox` and defaults to `logic`.

use crate::error::SocModelError;
use crate::module::{Module, ModuleBuilder, ModuleKind, ScanChain};
use crate::soc::Soc;

/// Parses a `.soc` document into an [`Soc`].
///
/// # Errors
///
/// Returns [`SocModelError::Parse`] with the offending line number when the
/// document is malformed (unknown directive, missing `soc` header, numeric
/// fields that do not parse, `module` without `end`, ...).
///
/// # Example
///
/// ```
/// use soctest_soc_model::parser::parse_soc;
///
/// let soc = parse_soc(
///     "soc tiny\nmodule 1 a\n patterns 5\n inputs 2\n outputs 2\n scanchains 10 20\nend\n",
/// )?;
/// assert_eq!(soc.name(), "tiny");
/// assert_eq!(soc.module_by_name("a").unwrap().1.total_scan_flip_flops(), 30);
/// # Ok::<(), soctest_soc_model::SocModelError>(())
/// ```
pub fn parse_soc(text: &str) -> Result<Soc, SocModelError> {
    let mut soc_name: Option<String> = None;
    let mut modules: Vec<Module> = Vec::new();
    let mut current: Option<PartialModule> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a first token");
        match keyword {
            "soc" => {
                let name = tokens
                    .next()
                    .ok_or_else(|| parse_err(line_no, "`soc` requires a name"))?;
                if soc_name.is_some() {
                    return Err(parse_err(line_no, "duplicate `soc` header"));
                }
                soc_name = Some(name.to_string());
            }
            "module" => {
                if current.is_some() {
                    return Err(parse_err(line_no, "nested `module` block (missing `end`?)"));
                }
                if soc_name.is_none() {
                    return Err(parse_err(line_no, "`module` before `soc` header"));
                }
                // The numeric index is optional and informational.
                let rest: Vec<&str> = tokens.collect();
                let name = match rest.as_slice() {
                    [] => return Err(parse_err(line_no, "`module` requires a name")),
                    [single] => (*single).to_string(),
                    [_index, name, ..] => (*name).to_string(),
                };
                current = Some(PartialModule::new(name));
            }
            "end" => {
                let partial = current
                    .take()
                    .ok_or_else(|| parse_err(line_no, "`end` outside of a module block"))?;
                modules.push(partial.builder.build());
            }
            "kind" => {
                let value = tokens
                    .next()
                    .ok_or_else(|| parse_err(line_no, "`kind` requires a value"))?;
                let kind = match value {
                    "logic" => ModuleKind::Logic,
                    "memory" => ModuleKind::Memory,
                    "blackbox" => ModuleKind::BlackBox,
                    other => {
                        return Err(parse_err(
                            line_no,
                            format!(
                                "unknown module kind `{other}` (expected logic|memory|blackbox)"
                            ),
                        ))
                    }
                };
                let partial = current
                    .as_mut()
                    .ok_or_else(|| parse_err(line_no, "`kind` outside of a module block"))?;
                partial.builder = partial.builder.clone().kind(kind);
            }
            "patterns" | "inputs" | "outputs" | "bidirs" => {
                let value: u64 = parse_number(line_no, tokens.next(), keyword)?;
                let partial = current.as_mut().ok_or_else(|| {
                    parse_err(line_no, format!("`{keyword}` outside of a module block"))
                })?;
                let b = partial.builder.clone();
                partial.builder = match keyword {
                    "patterns" => b.patterns(value),
                    "inputs" => b.inputs(as_u32(line_no, value, keyword)?),
                    "outputs" => b.outputs(as_u32(line_no, value, keyword)?),
                    "bidirs" => b.bidirs(as_u32(line_no, value, keyword)?),
                    _ => unreachable!(),
                };
            }
            "scanchains" => {
                let partial = current
                    .as_mut()
                    .ok_or_else(|| parse_err(line_no, "`scanchains` outside of a module block"))?;
                for tok in tokens {
                    let length: u64 = tok.parse().map_err(|_| {
                        parse_err(line_no, format!("invalid scan chain length `{tok}`"))
                    })?;
                    partial.chains.push(ScanChain::new(length));
                }
                let chains = partial.chains.clone();
                partial.builder = partial.builder.clone().scan_chains(chains);
            }
            other => {
                return Err(parse_err(line_no, format!("unknown directive `{other}`")));
            }
        }
    }

    if current.is_some() {
        return Err(parse_err(
            text.lines().count(),
            "unterminated `module` block at end of input",
        ));
    }
    let name = soc_name.ok_or_else(|| parse_err(1, "missing `soc` header"))?;
    Ok(Soc::from_modules(name, modules))
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> SocModelError {
    SocModelError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_number(line: usize, token: Option<&str>, keyword: &str) -> Result<u64, SocModelError> {
    let token = token.ok_or_else(|| parse_err(line, format!("`{keyword}` requires a value")))?;
    token
        .parse()
        .map_err(|_| parse_err(line, format!("invalid number `{token}` for `{keyword}`")))
}

fn as_u32(line: usize, value: u64, keyword: &str) -> Result<u32, SocModelError> {
    u32::try_from(value).map_err(|_| {
        parse_err(
            line,
            format!("value {value} for `{keyword}` exceeds u32 range"),
        )
    })
}

struct PartialModule {
    builder: ModuleBuilder,
    chains: Vec<ScanChain>,
}

impl PartialModule {
    fn new(name: String) -> Self {
        PartialModule {
            builder: Module::builder(name),
            chains: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# A small SOC for parser tests
soc tiny
module 1 alpha
  kind logic
  patterns 12
  inputs 8
  outputs 9
  bidirs 2
  scanchains 10 20 30
end

module 2 beta
  kind memory
  patterns 300
  inputs 40
  outputs 30
  scanchains 64
  scanchains 64 32
end
"#;

    #[test]
    fn parses_sample_document() {
        let soc = parse_soc(SAMPLE).unwrap();
        assert_eq!(soc.name(), "tiny");
        assert_eq!(soc.num_modules(), 2);

        let (_, alpha) = soc.module_by_name("alpha").unwrap();
        assert_eq!(alpha.patterns(), 12);
        assert_eq!(alpha.inputs(), 8);
        assert_eq!(alpha.outputs(), 9);
        assert_eq!(alpha.bidirs(), 2);
        assert_eq!(alpha.total_scan_flip_flops(), 60);

        let (_, beta) = soc.module_by_name("beta").unwrap();
        assert_eq!(beta.kind(), ModuleKind::Memory);
        assert_eq!(beta.num_scan_chains(), 3);
        assert_eq!(beta.total_scan_flip_flops(), 160);
    }

    #[test]
    fn module_index_is_optional() {
        let soc = parse_soc("soc s\nmodule onlyname\n patterns 1\nend\n").unwrap();
        assert_eq!(soc.modules()[0].name(), "onlyname");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let soc = parse_soc("# hi\n\nsoc s # trailing\n# only comments\n").unwrap();
        assert_eq!(soc.name(), "s");
        assert!(soc.is_empty());
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_soc("module 1 a\nend\n").unwrap_err();
        assert!(matches!(err, SocModelError::Parse { .. }));
    }

    #[test]
    fn duplicate_header_is_an_error() {
        let err = parse_soc("soc a\nsoc b\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn nested_module_is_an_error() {
        let err = parse_soc("soc s\nmodule 1 a\nmodule 2 b\nend\n").unwrap_err();
        assert!(err.to_string().contains("nested"));
    }

    #[test]
    fn unterminated_module_is_an_error() {
        let err = parse_soc("soc s\nmodule 1 a\n patterns 3\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn unknown_directive_reports_line() {
        let err = parse_soc("soc s\nmodule 1 a\n bogus 3\nend\n").unwrap_err();
        match err {
            SocModelError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_number_is_an_error() {
        let err = parse_soc("soc s\nmodule 1 a\n patterns notanumber\nend\n").unwrap_err();
        assert!(err.to_string().contains("notanumber"));
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let err = parse_soc("soc s\nmodule 1 a\n kind analog\nend\n").unwrap_err();
        assert!(err.to_string().contains("analog"));
    }

    #[test]
    fn directive_outside_module_is_an_error() {
        let err = parse_soc("soc s\npatterns 5\n").unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn end_outside_module_is_an_error() {
        let err = parse_soc("soc s\nend\n").unwrap_err();
        assert!(err.to_string().contains("outside"));
    }
}
