//! Property-based tests for the SOC data model: parser/writer round trips
//! and statistic invariants.

use proptest::prelude::*;
use soctest_soc_model::parser::parse_soc;
use soctest_soc_model::writer::write_soc;
use soctest_soc_model::{Module, ModuleKind, Soc};

fn arb_kind() -> impl Strategy<Value = ModuleKind> {
    prop_oneof![
        Just(ModuleKind::Logic),
        Just(ModuleKind::Memory),
        Just(ModuleKind::BlackBox),
    ]
}

prop_compose! {
    fn arb_module(index: usize)(
        kind in arb_kind(),
        patterns in 1u64..5_000,
        inputs in 0u32..300,
        outputs in 0u32..300,
        bidirs in 0u32..50,
        chains in proptest::collection::vec(1u64..2_000, 0..24),
    ) -> Module {
        Module::builder(format!("core_{index}"))
            .kind(kind)
            .patterns(patterns)
            .inputs(inputs)
            .outputs(outputs)
            .bidirs(bidirs)
            .scan_chains(chains)
            .build()
    }
}

fn arb_soc() -> impl Strategy<Value = Soc> {
    (1usize..20).prop_flat_map(|n| {
        let modules: Vec<_> = (0..n).map(arb_module).collect();
        modules.prop_map(|ms| Soc::from_modules("prop_soc", ms))
    })
}

proptest! {
    #[test]
    fn writer_parser_round_trip(soc in arb_soc()) {
        let text = write_soc(&soc);
        let parsed = parse_soc(&text).expect("generated text must parse");
        prop_assert_eq!(parsed, soc);
    }

    #[test]
    fn totals_are_sums_of_modules(soc in arb_soc()) {
        let patterns: u64 = soc.modules().iter().map(Module::patterns).sum();
        prop_assert_eq!(soc.total_patterns(), patterns);
        let ff: u64 = soc.modules().iter().map(Module::total_scan_flip_flops).sum();
        prop_assert_eq!(soc.total_scan_flip_flops(), ff);
    }

    #[test]
    fn test_data_volume_is_monotone_in_patterns(
        patterns in 1u64..1_000,
        extra in 1u64..1_000,
        chains in proptest::collection::vec(1u64..500, 1..8),
    ) {
        let base = Module::builder("m")
            .patterns(patterns)
            .inputs(4)
            .outputs(4)
            .scan_chains(chains.clone())
            .build();
        let more = Module::builder("m")
            .patterns(patterns + extra)
            .inputs(4)
            .outputs(4)
            .scan_chains(chains)
            .build();
        prop_assert!(more.test_data_volume_bits() > base.test_data_volume_bits());
    }

    #[test]
    fn test_time_floor_never_exceeds_single_chain_serial_time(
        patterns in 1u64..500,
        chains in proptest::collection::vec(1u64..300, 1..10),
    ) {
        let m = Module::builder("m").patterns(patterns).scan_chains(chains.clone()).build();
        let total: u64 = chains.iter().sum();
        // The floor assumes the best possible wrapper (every chain separate);
        // it can never exceed the fully serial single-chain time.
        let serial = (1 + total) * patterns + total;
        prop_assert!(m.test_time_floor_cycles() <= serial);
    }
}
