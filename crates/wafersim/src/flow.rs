//! The die-by-die wafer-test flow simulation.
//!
//! One simulation run processes a stream of dies with an `n`-site probe
//! card. Per touchdown:
//!
//! 1. the prober indexes to the next group of `n` dies (index time),
//! 2. every site runs its contact test; each of the die's contacted
//!    terminals fails independently with probability `1 − p_c`,
//! 3. the manufacturing test runs on all sites in parallel; with
//!    abort-on-fail enabled it is (optimistically, as in Equation 4.4)
//!    charged only when at least one contact-passing site also passes the
//!    manufacturing test,
//! 4. dies that failed only their contact test are appended to the re-test
//!    queue (at most one re-test per die) when re-test is enabled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of one wafer-test flow simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowParams {
    /// Number of probe-card sites (dies tested per touchdown).
    pub sites: usize,
    /// Contacted terminals per die (the E-RPCT pads).
    pub pins_per_site: usize,
    /// Per-terminal contact yield `p_c`.
    pub contact_yield: f64,
    /// Per-die manufacturing yield `p_m`.
    pub manufacturing_yield: f64,
    /// Prober index time per touchdown, seconds.
    pub index_time_s: f64,
    /// Contact-test time per touchdown, seconds.
    pub contact_test_time_s: f64,
    /// Manufacturing-test time per touchdown, seconds.
    pub manufacturing_test_time_s: f64,
    /// Whether the (optimistic) abort-on-fail model of Equation 4.4 is
    /// applied.
    pub abort_on_fail: bool,
    /// Whether dies failing only the contact test are re-tested once.
    pub retest_contact_failures: bool,
}

impl FlowParams {
    /// Builds the flow parameters corresponding to the optimal operating
    /// point of a two-step optimizer solution: the simulated flow then
    /// reproduces exactly the scenario whose throughput the optimizer
    /// predicted analytically.
    pub fn from_solution(
        solution: &soctest_multisite::MultiSiteSolution,
        config: &soctest_multisite::OptimizerConfig,
    ) -> Self {
        FlowParams {
            sites: solution.optimal.sites,
            pins_per_site: solution.contacted_pads_per_site,
            contact_yield: config.contact_yield,
            manufacturing_yield: config.manufacturing_yield,
            index_time_s: config.test_cell.probe.index_time_s,
            contact_test_time_s: config.test_cell.probe.contact_test_time_s,
            manufacturing_test_time_s: solution.optimal.manufacturing_test_time_s,
            abort_on_fail: config.options.abort_on_fail,
            retest_contact_failures: config.options.retest_contact_failures,
        }
    }

    /// Validates the numeric ranges.
    ///
    /// # Panics
    ///
    /// Panics when a yield is outside `0..=1`, a time is negative, or
    /// `sites` is zero. Called by [`simulate_flow`].
    fn validate(&self) {
        assert!(self.sites > 0, "at least one site is required");
        assert!(
            (0.0..=1.0).contains(&self.contact_yield),
            "contact yield out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.manufacturing_yield),
            "manufacturing yield out of range"
        );
        assert!(self.index_time_s >= 0.0, "index time must be non-negative");
        assert!(
            self.contact_test_time_s >= 0.0 && self.manufacturing_test_time_s >= 0.0,
            "test times must be non-negative"
        );
    }
}

/// Aggregate outcome of a simulated wafer-test flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Dies offered to the flow (unique devices).
    pub unique_devices: usize,
    /// Device tests executed, including re-tests.
    pub device_tests: usize,
    /// Touchdowns performed.
    pub touchdowns: usize,
    /// Dies that passed contact and manufacturing test (possibly after a
    /// re-test).
    pub passed_devices: usize,
    /// Dies re-tested because of a contact failure.
    pub retested_devices: usize,
    /// Total wall-clock test time in seconds.
    pub total_time_s: f64,
    /// Measured throughput in device tests per hour (the empirical
    /// counterpart of Equation 4.5's `D_th`).
    pub devices_per_hour: f64,
    /// Measured throughput in unique devices per hour (the empirical
    /// counterpart of Equation 4.6's `D^u_th`).
    pub unique_devices_per_hour: f64,
}

/// Simulates testing `dies` dies with the given flow parameters and RNG
/// seed, and returns the aggregate outcome.
///
/// The simulation is deterministic for a given `(params, dies, seed)`
/// triple.
///
/// # Panics
///
/// Panics if the parameters are out of range (see [`FlowParams`]).
pub fn simulate_flow(params: &FlowParams, dies: usize, seed: u64) -> FlowOutcome {
    params.validate();
    let mut rng = StdRng::seed_from_u64(seed);

    // The work queue: (die id, is_retest). Fresh dies first, re-tests are
    // appended as they occur.
    let mut queue: std::collections::VecDeque<(usize, bool)> =
        (0..dies).map(|d| (d, false)).collect();

    let mut device_tests = 0usize;
    let mut touchdowns = 0usize;
    let mut passed = vec![false; dies];
    let mut retested = vec![false; dies];
    let mut total_time_s = 0.0f64;

    while !queue.is_empty() {
        // Load up to `sites` dies for this touchdown.
        let mut batch = Vec::with_capacity(params.sites);
        while batch.len() < params.sites {
            match queue.pop_front() {
                Some(entry) => batch.push(entry),
                None => break,
            }
        }
        touchdowns += 1;
        device_tests += batch.len();
        total_time_s += params.index_time_s + params.contact_test_time_s;

        // Contact test per site.
        let contact_ok: Vec<bool> = batch
            .iter()
            .map(|_| (0..params.pins_per_site).all(|_| rng.gen_bool(params.contact_yield)))
            .collect();
        // Manufacturing outcome per site (only meaningful when the contact
        // test passed).
        let manufacturing_ok: Vec<bool> = batch
            .iter()
            .map(|_| rng.gen_bool(params.manufacturing_yield))
            .collect();

        // Manufacturing test time: with the paper's optimistic abort-on-fail
        // assumption the full time is only charged when at least one site
        // passes both tests; otherwise the touchdown aborts immediately.
        let any_full_pass = contact_ok
            .iter()
            .zip(&manufacturing_ok)
            .any(|(&c, &m)| c && m);
        if !params.abort_on_fail || any_full_pass {
            total_time_s += params.manufacturing_test_time_s;
        }

        // Book-keeping per die.
        for (slot, &(die, is_retest)) in batch.iter().enumerate() {
            if contact_ok[slot] {
                if manufacturing_ok[slot] {
                    passed[die] = true;
                }
            } else if params.retest_contact_failures && !is_retest && !retested[die] {
                retested[die] = true;
                queue.push_back((die, true));
            }
        }
    }

    let hours = total_time_s / 3_600.0;
    FlowOutcome {
        unique_devices: dies,
        device_tests,
        touchdowns,
        passed_devices: passed.iter().filter(|&&p| p).count(),
        retested_devices: retested.iter().filter(|&&r| r).count(),
        total_time_s,
        devices_per_hour: if hours > 0.0 {
            device_tests as f64 / hours
        } else {
            0.0
        },
        unique_devices_per_hour: if hours > 0.0 {
            dies as f64 / hours
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::relative_error;
    use soctest_throughput::{TestTimes, ThroughputModel, YieldParams};

    fn params() -> FlowParams {
        FlowParams {
            sites: 4,
            pins_per_site: 110,
            contact_yield: 1.0,
            manufacturing_yield: 1.0,
            index_time_s: 0.1,
            contact_test_time_s: 0.001,
            manufacturing_test_time_s: 1.4,
            abort_on_fail: false,
            retest_contact_failures: false,
        }
    }

    fn analytic(p: &FlowParams) -> ThroughputModel {
        ThroughputModel::new(
            TestTimes {
                index_time_s: p.index_time_s,
                contact_test_time_s: p.contact_test_time_s,
                manufacturing_test_time_s: p.manufacturing_test_time_s,
            },
            YieldParams {
                contact_yield: p.contact_yield,
                manufacturing_yield: p.manufacturing_yield,
                contacted_pins: p.pins_per_site,
            },
        )
    }

    #[test]
    fn ideal_flow_matches_equation_4_5_exactly() {
        let p = params();
        let outcome = simulate_flow(&p, 4 * 250, 1);
        assert_eq!(outcome.touchdowns, 250);
        assert_eq!(outcome.retested_devices, 0);
        let expected = analytic(&p).devices_per_hour(p.sites);
        assert!(relative_error(outcome.devices_per_hour, expected) < 1e-9);
    }

    #[test]
    fn measured_throughput_tracks_analytic_model_with_defects() {
        let mut p = params();
        p.contact_yield = 0.9995;
        p.manufacturing_yield = 0.85;
        let outcome = simulate_flow(&p, 20_000, 7);
        let expected = analytic(&p).devices_per_hour(p.sites);
        // Without abort-on-fail the touchdown time is deterministic, so the
        // agreement is exact up to the partial final touchdown.
        assert!(relative_error(outcome.devices_per_hour, expected) < 1e-3);
    }

    #[test]
    fn abort_on_fail_speeds_up_low_yield_single_site_testing() {
        let mut p = params();
        p.sites = 1;
        p.manufacturing_yield = 0.5;
        p.abort_on_fail = true;
        let outcome = simulate_flow(&p, 20_000, 11);
        let expected = analytic(&p).devices_per_hour_abort_on_fail(1);
        assert!(
            relative_error(outcome.devices_per_hour, expected) < 0.02,
            "measured {} vs expected {expected}",
            outcome.devices_per_hour
        );
        // And it must be faster than the non-aborting flow.
        let full = analytic(&p).devices_per_hour(1);
        assert!(outcome.devices_per_hour > full * 1.2);
    }

    #[test]
    fn abort_on_fail_benefit_vanishes_at_high_site_counts() {
        let mut p = params();
        p.manufacturing_yield = 0.7;
        p.abort_on_fail = true;
        p.sites = 8;
        let outcome = simulate_flow(&p, 40_000, 13);
        let no_abort = analytic(&p).devices_per_hour(8);
        // Paper, Section 7: beyond a handful of sites the benefit is invisible.
        assert!(relative_error(outcome.devices_per_hour, no_abort) < 0.01);
    }

    #[test]
    fn retest_rate_matches_equation_4_6() {
        let mut p = params();
        p.contact_yield = 0.999;
        p.pins_per_site = 200;
        p.retest_contact_failures = true;
        let dies = 40_000;
        let outcome = simulate_flow(&p, dies, 5);
        let single_pin_rate =
            soctest_throughput::retest::retest_rate(p.pins_per_site, p.contact_yield);
        let any_pin_rate = 1.0 - p.contact_yield.powi(p.pins_per_site as i32);
        // The simulator re-tests every contact failure, i.e. its rate tracks
        // `1 - p_c^x`; the closed form of Equation 4.6 deliberately neglects
        // the (rarer) multi-pin failures and therefore sits slightly below.
        let measured_rate = outcome.retested_devices as f64 / dies as f64;
        assert!(
            relative_error(measured_rate, any_pin_rate) < 0.05,
            "measured {measured_rate} vs any-pin rate {any_pin_rate}"
        );
        assert!(
            measured_rate > single_pin_rate * 0.95,
            "measured {measured_rate} should not fall below the single-pin rate {single_pin_rate}"
        );
        // Unique throughput is below raw throughput by the re-test share.
        assert!(outcome.unique_devices_per_hour < outcome.devices_per_hour);
        assert_eq!(outcome.device_tests, dies + outcome.retested_devices);
    }

    #[test]
    fn perfect_contact_yield_never_retests() {
        let mut p = params();
        p.retest_contact_failures = true;
        let outcome = simulate_flow(&p, 5_000, 3);
        assert_eq!(outcome.retested_devices, 0);
        assert_eq!(outcome.passed_devices, 5_000);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let mut p = params();
        p.manufacturing_yield = 0.8;
        let a = simulate_flow(&p, 3_000, 99);
        let b = simulate_flow(&p, 3_000, 99);
        let c = simulate_flow(&p, 3_000, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn partial_last_touchdown_is_counted() {
        let p = params();
        let outcome = simulate_flow(&p, 10, 1); // 4 sites -> 3 touchdowns
        assert_eq!(outcome.touchdowns, 3);
        assert_eq!(outcome.device_tests, 10);
    }

    #[test]
    fn zero_dies_is_a_noop() {
        let outcome = simulate_flow(&params(), 0, 1);
        assert_eq!(outcome.touchdowns, 0);
        assert_eq!(outcome.devices_per_hour, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        let mut p = params();
        p.sites = 0;
        let _ = simulate_flow(&p, 10, 1);
    }

    #[test]
    #[should_panic(expected = "contact yield")]
    fn bad_yield_panics() {
        let mut p = params();
        p.contact_yield = 1.5;
        let _ = simulate_flow(&p, 10, 1);
    }

    #[test]
    fn flow_built_from_optimizer_solution_reproduces_predicted_throughput() {
        use soctest_ate::{AteSpec, ProbeStation, TestCell};
        use soctest_multisite::{optimizer::optimize, OptimizerConfig};
        use soctest_soc_model::benchmarks::d695;

        let config = OptimizerConfig::new(TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ));
        let solution = optimize(&d695(), &config).unwrap();
        let flow = FlowParams::from_solution(&solution, &config);
        assert_eq!(flow.sites, solution.optimal.sites);
        let dies = flow.sites * 300;
        let outcome = simulate_flow(&flow, dies, 2026);
        assert!(
            relative_error(outcome.devices_per_hour, solution.optimal.devices_per_hour) < 1e-6,
            "measured {} vs predicted {}",
            outcome.devices_per_hour,
            solution.optimal.devices_per_hour
        );
    }
}
