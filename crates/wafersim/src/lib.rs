//! Monte-Carlo wafer-test flow simulator.
//!
//! The throughput model of Section 4 of the paper is analytic: closed-form
//! expressions for the pass probabilities at `n` sites, the abort-on-fail
//! lower bound and the re-test rate. This crate provides an *independent*
//! check of those expressions: it simulates the wafer-test flow die by die
//! and touchdown by touchdown — random per-terminal contact faults, random
//! manufacturing defects, abort-on-fail, and single re-test of
//! contact-failing dies — and measures the resulting throughput empirically.
//!
//! The simulator is deterministic for a given seed (ChaCha-based RNG), so
//! the validation benches and tests are reproducible.
//!
//! # Example
//!
//! ```
//! use soctest_wafersim::{FlowParams, simulate_flow};
//!
//! let params = FlowParams {
//!     sites: 4,
//!     pins_per_site: 120,
//!     contact_yield: 0.999,
//!     manufacturing_yield: 0.9,
//!     index_time_s: 0.1,
//!     contact_test_time_s: 0.001,
//!     manufacturing_test_time_s: 1.0,
//!     abort_on_fail: false,
//!     retest_contact_failures: true,
//! };
//! let outcome = simulate_flow(&params, 2_000, 42);
//! assert!(outcome.devices_per_hour > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flow;
pub mod stats;

pub use flow::{simulate_flow, FlowOutcome, FlowParams};
pub use stats::{mean, relative_error, std_dev};
