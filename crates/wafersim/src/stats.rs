//! Small statistics helpers for Monte-Carlo results.

/// Arithmetic mean of a sample; 0.0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0.0 for fewer than two
/// samples.
pub fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

/// Relative error `|measured − expected| / |expected|`; returns the absolute
/// error when `expected` is zero.
pub fn relative_error(measured: f64, expected: f64) -> f64 {
    if expected == 0.0 {
        measured.abs()
    } else {
        (measured - expected).abs() / expected.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_sample() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_of_known_sample() {
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138089935).abs() < 1e-6);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn relative_error_handles_zero_expectation() {
        assert_eq!(relative_error(0.5, 0.0), 0.5);
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
    }
}
