//! Re-test of contact failures and the unique-device throughput
//! (Equation 4.6).
//!
//! Devices that fail only their contact test are commonly re-tested: the
//! failure was most likely caused by a bad probe contact rather than a bad
//! die, and discarding it would waste a good product. Re-testing does not
//! change the number of test slots executed per hour (`D_th`), but part of
//! those slots now repeat devices, so the number of *unique* devices tested
//! per hour (`D^u_th`) drops.

/// Fraction of devices that fail the contact test on exactly one terminal
/// and therefore qualify for a re-test, for a device with `pins` contacted
/// terminals and per-terminal contact yield `contact_yield`:
///
/// ```text
/// r = x · (1 - p_c) · p_c^(x-1)
/// ```
///
/// (the paper's "excluding the unlikely event of multiple failing terminal
/// contacts per SOC").
///
/// # Panics
///
/// Panics if `contact_yield` is not within `0.0..=1.0`.
pub fn retest_rate(pins: usize, contact_yield: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&contact_yield),
        "contact yield {contact_yield} out of range"
    );
    if pins == 0 {
        return 0.0;
    }
    pins as f64 * (1.0 - contact_yield) * contact_yield.powi(pins as i32 - 1)
}

/// Unique devices tested per hour when every contact-failing device is
/// re-tested at most once (Equation 4.6):
///
/// ```text
/// D^u_th = D_th / (1 + r)
/// ```
///
/// Out of the `D_th` test slots executed per hour, a fraction `r` is spent
/// repeating devices that failed their first contact test, so only
/// `D_th / (1 + r)` distinct devices complete per hour.
///
/// # Panics
///
/// Panics if `devices_per_hour` is negative or `retest_rate` is negative.
pub fn unique_devices_per_hour(devices_per_hour: f64, retest_rate: f64) -> f64 {
    assert!(devices_per_hour >= 0.0, "throughput must be non-negative");
    assert!(retest_rate >= 0.0, "re-test rate must be non-negative");
    devices_per_hour / (1.0 + retest_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_contact_yield_has_zero_retests() {
        assert_eq!(retest_rate(500, 1.0), 0.0);
    }

    #[test]
    fn zero_pins_have_zero_retests() {
        assert_eq!(retest_rate(0, 0.9), 0.0);
    }

    #[test]
    fn retest_rate_matches_closed_form() {
        let r = retest_rate(100, 0.999);
        let expected = 100.0 * 0.001 * 0.999f64.powi(99);
        assert!((r - expected).abs() < 1e-12);
    }

    #[test]
    fn retest_rate_grows_with_pin_count_at_high_yield() {
        // At contact yields near 1, more contacted pins mean more single-pin
        // failures.
        let few = retest_rate(50, 0.9999);
        let many = retest_rate(500, 0.9999);
        assert!(many > few);
    }

    #[test]
    fn retest_rate_is_a_probability() {
        for &pins in &[1usize, 10, 100, 1000] {
            for &yield_ in &[0.9, 0.99, 0.999, 0.9999, 1.0] {
                let r = retest_rate(pins, yield_);
                assert!(
                    (0.0..=1.0).contains(&r),
                    "r={r} for pins={pins} yield={yield_}"
                );
            }
        }
    }

    #[test]
    fn unique_throughput_formula() {
        let unique = unique_devices_per_hour(10_000.0, 0.25);
        assert!((unique - 8_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_retest_rate_preserves_throughput() {
        assert_eq!(unique_devices_per_hour(1234.0, 0.0), 1234.0);
    }

    #[test]
    fn low_contact_yield_hurts_unique_throughput() {
        let d = 10_000.0;
        let good = unique_devices_per_hour(d, retest_rate(200, 0.9999));
        let bad = unique_devices_per_hour(d, retest_rate(200, 0.998));
        assert!(bad < good);
    }

    #[test]
    #[should_panic(expected = "contact yield")]
    fn invalid_yield_panics() {
        let _ = retest_rate(10, -0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_throughput_panics() {
        let _ = unique_devices_per_hour(-1.0, 0.0);
    }
}
