//! The throughput model proper (Equations 4.1 and 4.5).

use crate::abort::abort_on_fail_test_time;
use crate::retest::{retest_rate, unique_devices_per_hour};
use serde::{Deserialize, Serialize};

/// The three time components of one touchdown (Equation 4.1):
/// `t = t_i + t_t`, with `t_t = t_c + t_m`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestTimes {
    /// Index time `t_i` in seconds.
    pub index_time_s: f64,
    /// Contact-test time `t_c` in seconds.
    pub contact_test_time_s: f64,
    /// Manufacturing test time `t_m` in seconds (determined by the DfT
    /// architecture and the ATE clock).
    pub manufacturing_test_time_s: f64,
}

impl TestTimes {
    /// Total test time `t_t = t_c + t_m` (manufacturing plus contact test).
    pub fn test_time_s(&self) -> f64 {
        self.contact_test_time_s + self.manufacturing_test_time_s
    }

    /// Total time per touchdown `t = t_i + t_c + t_m`.
    pub fn total_time_s(&self) -> f64 {
        self.index_time_s + self.test_time_s()
    }
}

/// Yield-related parameters of the throughput model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YieldParams {
    /// Per-terminal contact yield `p_c`.
    pub contact_yield: f64,
    /// Per-SOC manufacturing yield `p_m`.
    pub manufacturing_yield: f64,
    /// Number of terminals contacted per SOC (the E-RPCT pads).
    pub contacted_pins: usize,
}

impl YieldParams {
    /// Ideal yields: every contact and every device passes.
    pub fn ideal(contacted_pins: usize) -> Self {
        YieldParams {
            contact_yield: 1.0,
            manufacturing_yield: 1.0,
            contacted_pins,
        }
    }
}

/// The complete multi-site throughput model of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputModel {
    /// Per-touchdown time components.
    pub times: TestTimes,
    /// Yield parameters.
    pub yields: YieldParams,
}

impl ThroughputModel {
    /// Creates a throughput model.
    ///
    /// # Panics
    ///
    /// Panics if a time is negative or a yield is outside `0.0..=1.0`.
    pub fn new(times: TestTimes, yields: YieldParams) -> Self {
        assert!(times.index_time_s >= 0.0, "index time must be non-negative");
        assert!(
            times.contact_test_time_s >= 0.0,
            "contact test time must be non-negative"
        );
        assert!(
            times.manufacturing_test_time_s >= 0.0,
            "manufacturing test time must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&yields.contact_yield),
            "contact yield out of range"
        );
        assert!(
            (0.0..=1.0).contains(&yields.manufacturing_yield),
            "manufacturing yield out of range"
        );
        ThroughputModel { times, yields }
    }

    /// Devices tested per hour with `sites`-site testing and *without*
    /// abort-on-fail (Equation 4.5):
    ///
    /// ```text
    /// D_th = 3600 · n / (t_i + t_t)
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0`.
    pub fn devices_per_hour(&self, sites: usize) -> f64 {
        assert!(sites > 0, "throughput needs at least one site");
        3_600.0 * sites as f64 / self.times.total_time_s()
    }

    /// Devices tested per hour with abort-on-fail: the manufacturing test
    /// time is replaced by the Equation 4.4 lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0`.
    pub fn devices_per_hour_abort_on_fail(&self, sites: usize) -> f64 {
        assert!(sites > 0, "throughput needs at least one site");
        let t_a = self.abort_on_fail_test_time(sites);
        3_600.0 * sites as f64 / (self.times.index_time_s + t_a)
    }

    /// The abort-on-fail test application time `t_a` (Equation 4.4) for
    /// `sites` sites, in seconds (contact test included).
    pub fn abort_on_fail_test_time(&self, sites: usize) -> f64 {
        abort_on_fail_test_time(
            self.times.contact_test_time_s,
            self.times.manufacturing_test_time_s,
            sites,
            self.yields.contacted_pins,
            self.yields.contact_yield,
            self.yields.manufacturing_yield,
        )
    }

    /// Fraction of devices that fail the contact test on exactly one
    /// terminal and are therefore re-tested (see [`crate::retest`]).
    pub fn retest_rate(&self) -> f64 {
        retest_rate(self.yields.contacted_pins, self.yields.contact_yield)
    }

    /// Unique devices tested per hour when contact failures are re-tested
    /// once (Equation 4.6).
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0`.
    pub fn unique_devices_per_hour(&self, sites: usize) -> f64 {
        unique_devices_per_hour(self.devices_per_hour(sites), self.retest_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like_model() -> ThroughputModel {
        ThroughputModel::new(
            TestTimes {
                index_time_s: 0.1,
                contact_test_time_s: 0.001,
                manufacturing_test_time_s: 1.4,
            },
            YieldParams {
                contact_yield: 0.999,
                manufacturing_yield: 0.9,
                contacted_pins: 110,
            },
        )
    }

    #[test]
    fn time_components_add_up() {
        let times = paper_like_model().times;
        assert!((times.test_time_s() - 1.401).abs() < 1e-12);
        assert!((times.total_time_s() - 1.501).abs() < 1e-12);
    }

    #[test]
    fn throughput_matches_equation_4_5() {
        let model = paper_like_model();
        let d = model.devices_per_hour(5);
        assert!((d - 3_600.0 * 5.0 / 1.501).abs() < 1e-9);
    }

    #[test]
    fn throughput_scales_linearly_with_sites() {
        let model = paper_like_model();
        let d1 = model.devices_per_hour(1);
        let d4 = model.devices_per_hour(4);
        assert!((d4 - 4.0 * d1).abs() < 1e-9);
    }

    #[test]
    fn abort_on_fail_never_reduces_throughput() {
        let model = paper_like_model();
        for sites in 1..=8 {
            assert!(
                model.devices_per_hour_abort_on_fail(sites) >= model.devices_per_hour(sites) - 1e-9
            );
        }
    }

    #[test]
    fn abort_on_fail_benefit_decreases_with_sites() {
        let low_yield = ThroughputModel::new(
            paper_like_model().times,
            YieldParams {
                manufacturing_yield: 0.7,
                ..paper_like_model().yields
            },
        );
        let gain =
            |n: usize| low_yield.devices_per_hour_abort_on_fail(n) / low_yield.devices_per_hour(n);
        assert!(gain(1) > gain(2));
        assert!(gain(2) > gain(4));
        assert!(gain(6) < 1.01);
    }

    #[test]
    fn unique_throughput_is_at_most_total_throughput() {
        let model = paper_like_model();
        for sites in 1..=6 {
            assert!(model.unique_devices_per_hour(sites) <= model.devices_per_hour(sites));
        }
    }

    #[test]
    fn perfect_contact_yield_needs_no_retests() {
        let model = ThroughputModel::new(paper_like_model().times, YieldParams::ideal(200));
        assert_eq!(model.retest_rate(), 0.0);
        assert!((model.unique_devices_per_hour(3) - model.devices_per_hour(3)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        let _ = paper_like_model().devices_per_hour(0);
    }

    #[test]
    #[should_panic(expected = "contact yield")]
    fn invalid_yield_panics() {
        let _ = ThroughputModel::new(
            paper_like_model().times,
            YieldParams {
                contact_yield: 2.0,
                manufacturing_yield: 1.0,
                contacted_pins: 10,
            },
        );
    }

    #[test]
    #[should_panic(expected = "index time")]
    fn negative_time_panics() {
        let _ = ThroughputModel::new(
            TestTimes {
                index_time_s: -0.1,
                contact_test_time_s: 0.0,
                manufacturing_test_time_s: 0.0,
            },
            YieldParams::ideal(1),
        );
    }
}
