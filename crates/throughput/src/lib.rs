//! The multi-site test throughput cost model (Section 4 of the paper).
//!
//! Given the DfT architecture (which fixes the manufacturing test time
//! `t_m`) and the test-cell parameters (index time `t_i`, contact-test time
//! `t_c`, contact yield `p_c`, manufacturing yield `p_m`), this crate
//! evaluates:
//!
//! * the total test time per touchdown (Equation 4.1),
//! * the probability that at least one of `n` sites passes the contact /
//!   manufacturing test (Equations 4.2 and 4.3),
//! * the abort-on-fail lower bound on the test application time
//!   (Equation 4.4),
//! * the test throughput in devices per hour (Equation 4.5),
//! * the re-test rate and the *unique*-device throughput (Equation 4.6).
//!
//! # Example
//!
//! ```
//! use soctest_throughput::{ThroughputModel, TestTimes, YieldParams};
//!
//! let times = TestTimes { index_time_s: 0.1, contact_test_time_s: 0.001, manufacturing_test_time_s: 1.4 };
//! let yields = YieldParams { contact_yield: 0.999, manufacturing_yield: 0.9, contacted_pins: 120 };
//! let model = ThroughputModel::new(times, yields);
//! let per_hour = model.devices_per_hour(4);
//! assert!(per_hour > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abort;
pub mod model;
pub mod retest;

pub use abort::{
    abort_on_fail_test_time, contact_pass_probability, manufacturing_pass_probability,
};
pub use model::{TestTimes, ThroughputModel, YieldParams};
pub use retest::{retest_rate, unique_devices_per_hour};
