//! Abort-on-fail and multi-site pass probabilities (Equations 4.2–4.4).
//!
//! In single-site high-volume testing the test can be aborted as soon as the
//! first failing vector is observed, which shortens the average test time at
//! low yield. With `n` sites tested in parallel the test can only be aborted
//! once *all* sites have started failing — Section 7 of the paper shows that
//! this quickly erases the benefit of abort-on-fail. The expressions here
//! use the paper's deliberately optimistic assumption that a failing device
//! consumes zero test time, which makes the derived times *lower bounds*.

/// Probability that at least one out of `sites` SOCs passes the contact
/// test, when each SOC exposes `pins` contacted terminals and every terminal
/// passes with probability `contact_yield` (Equation 4.2):
///
/// ```text
/// P_c(n) = 1 - (1 - p_c^x)^n
/// ```
///
/// # Panics
///
/// Panics if `contact_yield` is not within `0.0..=1.0`.
pub fn contact_pass_probability(sites: usize, pins: usize, contact_yield: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&contact_yield),
        "contact yield {contact_yield} out of range"
    );
    if sites == 0 {
        return 0.0;
    }
    let single_pass = contact_yield.powi(pins as i32);
    1.0 - (1.0 - single_pass).powi(sites as i32)
}

/// Probability that at least one out of `sites` SOCs passes the
/// manufacturing test, when a single SOC passes with probability
/// `manufacturing_yield` (Equation 4.3):
///
/// ```text
/// P_m(n) = 1 - (1 - p_m)^n
/// ```
///
/// # Panics
///
/// Panics if `manufacturing_yield` is not within `0.0..=1.0`.
pub fn manufacturing_pass_probability(sites: usize, manufacturing_yield: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&manufacturing_yield),
        "manufacturing yield {manufacturing_yield} out of range"
    );
    if sites == 0 {
        return 0.0;
    }
    1.0 - (1.0 - manufacturing_yield).powi(sites as i32)
}

/// Lower bound on the expected test application time per touchdown under
/// abort-on-fail (Equation 4.4):
///
/// ```text
/// t_a = t_c · P_c(n) · ... ≈ (t_c + t_m) reduced by the probability that
///       every site fails immediately
/// t_a = t_c  +  t_m · P_c(n) · P_m(n)
/// ```
///
/// following the paper's assumption that devices which fail (contact or
/// manufacturing test) take zero manufacturing test time. The contact test
/// itself is always executed.
///
/// # Panics
///
/// Panics if a yield parameter is out of range or a time is negative.
pub fn abort_on_fail_test_time(
    contact_test_time_s: f64,
    manufacturing_test_time_s: f64,
    sites: usize,
    pins: usize,
    contact_yield: f64,
    manufacturing_yield: f64,
) -> f64 {
    assert!(
        contact_test_time_s >= 0.0,
        "contact test time must be non-negative"
    );
    assert!(
        manufacturing_test_time_s >= 0.0,
        "manufacturing test time must be non-negative"
    );
    let p_contact = contact_pass_probability(sites, pins, contact_yield);
    let p_manufacturing = manufacturing_pass_probability(sites, manufacturing_yield);
    contact_test_time_s + manufacturing_test_time_s * p_contact * p_manufacturing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_yield_always_passes() {
        assert!((contact_pass_probability(1, 1000, 1.0) - 1.0).abs() < 1e-12);
        assert!((manufacturing_pass_probability(1, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_yield_never_passes() {
        assert!(contact_pass_probability(4, 10, 0.0) < 1e-12);
        assert!(manufacturing_pass_probability(4, 0.0) < 1e-12);
    }

    #[test]
    fn zero_sites_has_zero_pass_probability() {
        assert_eq!(contact_pass_probability(0, 10, 0.99), 0.0);
        assert_eq!(manufacturing_pass_probability(0, 0.9), 0.0);
    }

    #[test]
    fn more_sites_increase_pass_probability() {
        let p1 = manufacturing_pass_probability(1, 0.7);
        let p2 = manufacturing_pass_probability(2, 0.7);
        let p8 = manufacturing_pass_probability(8, 0.7);
        assert!(p1 < p2);
        assert!(p2 < p8);
        assert!(p8 <= 1.0);
    }

    #[test]
    fn contact_probability_matches_closed_form() {
        let p = contact_pass_probability(3, 100, 0.999);
        let single = 0.999f64.powi(100);
        let expected = 1.0 - (1.0 - single).powi(3);
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn more_pins_decrease_contact_pass_probability() {
        let few = contact_pass_probability(1, 50, 0.999);
        let many = contact_pass_probability(1, 500, 0.999);
        assert!(many < few);
    }

    #[test]
    fn abort_on_fail_time_is_bounded_by_full_time() {
        let full = 0.001 + 1.4;
        for sites in 1..=8 {
            for &pm in &[0.7, 0.9, 0.98, 1.0] {
                let t = abort_on_fail_test_time(0.001, 1.4, sites, 120, 0.999, pm);
                assert!(t <= full + 1e-12);
                assert!(t >= 0.001);
            }
        }
    }

    #[test]
    fn abort_on_fail_benefit_vanishes_with_many_sites() {
        // Paper, Section 7: "the effectiveness of abort-on-fail becomes
        // invisible beyond n = 5" even at 70% yield.
        let single = abort_on_fail_test_time(0.001, 1.4, 1, 120, 1.0, 0.7);
        let five = abort_on_fail_test_time(0.001, 1.4, 5, 120, 1.0, 0.7);
        let full = 0.001 + 1.4;
        assert!(
            single < 0.75 * full,
            "single-site should see a clear benefit"
        );
        assert!(
            five > 0.99 * full,
            "five sites should see almost no benefit"
        );
    }

    #[test]
    fn perfect_yield_gives_full_time() {
        let t = abort_on_fail_test_time(0.001, 1.4, 3, 100, 1.0, 1.0);
        assert!((t - 1.401).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "contact yield")]
    fn invalid_contact_yield_panics() {
        let _ = contact_pass_probability(1, 10, 1.5);
    }

    #[test]
    #[should_panic(expected = "manufacturing yield")]
    fn invalid_manufacturing_yield_panics() {
        let _ = manufacturing_pass_probability(1, -0.1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let _ = abort_on_fail_test_time(-0.1, 1.0, 1, 10, 1.0, 1.0);
    }
}
