//! Property-based tests on the throughput cost model.

use proptest::prelude::*;
use soctest_throughput::abort::{
    abort_on_fail_test_time, contact_pass_probability, manufacturing_pass_probability,
};
use soctest_throughput::retest::{retest_rate, unique_devices_per_hour};
use soctest_throughput::{TestTimes, ThroughputModel, YieldParams};

fn arb_yield() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1.0), 0.5f64..1.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pass_probabilities_are_probabilities(
        sites in 0usize..32,
        pins in 0usize..2_000,
        pc in arb_yield(),
        pm in arb_yield(),
    ) {
        let p_c = contact_pass_probability(sites, pins, pc);
        let p_m = manufacturing_pass_probability(sites, pm);
        prop_assert!((0.0..=1.0).contains(&p_c));
        prop_assert!((0.0..=1.0).contains(&p_m));
    }

    #[test]
    fn pass_probability_is_monotone_in_sites(
        pins in 1usize..500,
        pc in 0.9f64..1.0,
        pm in 0.5f64..1.0,
    ) {
        let mut prev_c = 0.0;
        let mut prev_m = 0.0;
        for sites in 1..10 {
            let c = contact_pass_probability(sites, pins, pc);
            let m = manufacturing_pass_probability(sites, pm);
            prop_assert!(c >= prev_c - 1e-12);
            prop_assert!(m >= prev_m - 1e-12);
            prev_c = c;
            prev_m = m;
        }
    }

    #[test]
    fn abort_time_is_between_contact_time_and_full_time(
        tc in 0.0f64..0.01,
        tm in 0.0f64..10.0,
        sites in 1usize..16,
        pins in 1usize..1_000,
        pc in 0.9f64..1.0,
        pm in arb_yield(),
    ) {
        let t = abort_on_fail_test_time(tc, tm, sites, pins, pc, pm);
        prop_assert!(t >= tc - 1e-12);
        prop_assert!(t <= tc + tm + 1e-12);
    }

    #[test]
    fn abort_time_is_monotone_in_sites(
        tm in 0.1f64..5.0,
        pins in 1usize..500,
        pm in 0.3f64..1.0,
    ) {
        let mut prev = 0.0;
        for sites in 1..12 {
            let t = abort_on_fail_test_time(0.001, tm, sites, pins, 0.999, pm);
            prop_assert!(t >= prev - 1e-12);
            prev = t;
        }
    }

    #[test]
    fn throughput_is_positive_and_linear_in_sites(
        ti in 0.0f64..1.0,
        tc in 0.0f64..0.01,
        tm in 0.001f64..10.0,
        sites in 1usize..64,
    ) {
        let model = ThroughputModel::new(
            TestTimes { index_time_s: ti, contact_test_time_s: tc, manufacturing_test_time_s: tm },
            YieldParams::ideal(100),
        );
        let d1 = model.devices_per_hour(1);
        let dn = model.devices_per_hour(sites);
        prop_assert!(d1 > 0.0);
        prop_assert!((dn - sites as f64 * d1).abs() < 1e-6 * dn.max(1.0));
    }

    #[test]
    fn unique_throughput_never_exceeds_total(
        d in 0.0f64..1.0e6,
        pins in 0usize..2_000,
        pc in 0.99f64..1.0,
    ) {
        let r = retest_rate(pins, pc);
        let unique = unique_devices_per_hour(d, r);
        prop_assert!(unique <= d + 1e-9);
        prop_assert!(unique >= d / 2.0 - 1e-9, "re-test at most doubles the work");
    }

    #[test]
    fn retest_rate_is_bounded_by_contact_fail_probability(
        pins in 1usize..1_000,
        pc in 0.9f64..1.0,
    ) {
        // P(exactly one failing terminal) can never exceed P(at least one
        // failing terminal); note that the single-failure probability itself
        // is *not* monotone in the contact yield for large pin counts.
        let single_fail = retest_rate(pins, pc);
        let any_fail = 1.0 - pc.powi(pins as i32);
        prop_assert!(single_fail <= any_fail + 1e-12);
    }
}
