//! Cross-crate integration tests: SOC description -> wrapper design ->
//! architecture -> optimizer -> throughput model -> Monte-Carlo flow.

use soctest::prelude::*;
use soctest::soc_model::benchmarks;
use soctest::soc_model::synthetic::pnx8550_like;
use soctest::tam::schedule::TestSchedule;

fn small_cell() -> TestCell {
    TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    )
}

#[test]
fn d695_full_pipeline_is_internally_consistent() {
    let soc = benchmarks::d695();
    let config = OptimizerConfig::new(small_cell());
    let solution = optimize(&soc, &config).expect("d695 fits the small cell");

    // The architecture respects the ATE.
    let ate = &config.test_cell.ate;
    assert!(solution.step1_architecture.total_channels() <= ate.channels);
    assert!(solution.step1_architecture.test_time_cycles() <= ate.vector_memory_depth);
    assert!(solution.optimal_architecture.test_time_cycles() <= ate.vector_memory_depth);

    // Every module is scheduled exactly once, with the schedule makespan
    // equal to the architecture's test time.
    let table = TimeTable::build(&soc, ate.channels / 2);
    let schedule = TestSchedule::from_architecture(&solution.optimal_architecture, &table);
    assert!(schedule.is_consistent());
    assert_eq!(schedule.entries.len(), soc.num_modules());
    assert_eq!(
        schedule.makespan(),
        solution.optimal_architecture.test_time_cycles()
    );

    // The reported manufacturing test time is the schedule makespan divided
    // by the test clock.
    let expected_tm = schedule.makespan() as f64 / ate.test_clock_hz;
    assert!((solution.optimal.manufacturing_test_time_s - expected_tm).abs() < 1e-12);

    // The throughput equals Equation 4.5 applied to those times.
    let model = ThroughputModel::new(
        TestTimes {
            index_time_s: config.test_cell.probe.index_time_s,
            contact_test_time_s: config.test_cell.probe.contact_test_time_s,
            manufacturing_test_time_s: expected_tm,
        },
        YieldParams::ideal(solution.contacted_pads_per_site),
    );
    let expected_throughput = model.devices_per_hour(solution.optimal.sites);
    assert!((solution.optimal.devices_per_hour - expected_throughput).abs() < 1e-6);
}

#[test]
fn every_embedded_benchmark_optimizes_on_a_table1_ate() {
    let cases: [(&str, usize, u64); 4] = [
        ("d695", 256, 64 * 1024),
        ("p22810", 512, 512 * 1024),
        ("p34392", 512, 1_256_000),
        ("p93791", 512, 2_000_000),
    ];
    for (name, channels, depth) in cases {
        let soc = benchmarks::by_name(name).expect("embedded benchmark");
        let cell = TestCell::new(
            AteSpec::new(channels, depth, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        let solution =
            optimize(&soc, &OptimizerConfig::new(cell)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            solution.optimal.sites >= 1,
            "{name} must support at least one site"
        );
        assert!(solution.optimal.devices_per_hour > 0.0);
        // The E-RPCT wrapper for the chosen operating point is well-formed.
        let erpct = ErpctWrapper::new(
            solution.optimal.channels_per_site,
            solution.optimal.tam_width,
            ErpctConfig::default(),
        )
        .expect("k = 2w is always a valid E-RPCT configuration");
        // k = 2w gives a one-to-one external/internal mapping (no
        // serialisation) — the wrapper narrows the interface only when the
        // optimizer chooses fewer external channels than internal chains.
        assert_eq!(erpct.serialization_factor(), 1);
    }
}

#[test]
fn pnx8550_like_matches_the_paper_operating_regime() {
    // Section 7: on the 512-channel / 7M-vector ATE the PNX8550 test runs in
    // roughly 1.4 s and supports a single-digit number of sites without
    // stimulus broadcast.
    let soc = pnx8550_like();
    let config = OptimizerConfig::paper_section7();
    let solution = optimize(&soc, &config).expect("PNX8550 stand-in fits the paper ATE");
    let tm = solution.optimal.manufacturing_test_time_s;
    assert!(
        tm > 1.0 && tm < 1.6,
        "manufacturing test time {tm} outside the paper regime"
    );
    assert!(
        (3..=8).contains(&solution.max_sites),
        "n_max {} outside the paper regime",
        solution.max_sites
    );
    assert!(
        solution.optimal.devices_per_hour > 8_000.0 && solution.optimal.devices_per_hour < 20_000.0,
        "throughput {} outside the paper regime",
        solution.optimal.devices_per_hour
    );
}

#[test]
fn broadcast_never_reduces_throughput_or_sites() {
    for name in ["d695", "p22810"] {
        let soc = benchmarks::by_name(name).expect("embedded benchmark");
        let cell = TestCell::new(
            AteSpec::new(512, 768 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        let base = OptimizerConfig::new(cell);
        let broadcast = base.with_options(MultiSiteOptions::baseline().with_broadcast());
        let without = optimize(&soc, &base).expect("feasible");
        let with = optimize(&soc, &broadcast).expect("feasible");
        assert!(with.max_sites >= without.max_sites, "{name}");
        assert!(
            with.optimal.devices_per_hour >= without.optimal.devices_per_hour - 1e-9,
            "{name}"
        );
    }
}

#[test]
fn monte_carlo_flow_confirms_optimizer_prediction_for_d695() {
    let soc = benchmarks::d695();
    let config = OptimizerConfig::new(small_cell());
    let solution = optimize(&soc, &config).expect("d695 fits");
    let flow = FlowParams::from_solution(&solution, &config);
    let outcome = simulate_flow(&flow, flow.sites * 500, 695);
    let relative = (outcome.devices_per_hour - solution.optimal.devices_per_hour).abs()
        / solution.optimal.devices_per_hour;
    assert!(
        relative < 1e-6,
        "measured {} vs predicted {}",
        outcome.devices_per_hour,
        solution.optimal.devices_per_hour
    );
}

#[test]
fn soc_round_trips_through_the_text_format_and_reoptimizes_identically() {
    let soc = benchmarks::p22810();
    let text = soctest::soc_model::writer::write_soc(&soc);
    let parsed = soctest::soc_model::parser::parse_soc(&text).expect("writer output parses");
    assert_eq!(parsed, soc);

    let cell = TestCell::new(
        AteSpec::new(512, 768 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    let config = OptimizerConfig::new(cell);
    let a = optimize(&soc, &config).expect("feasible");
    let b = optimize(&parsed, &config).expect("feasible");
    assert_eq!(a.optimal.channels_per_site, b.optimal.channels_per_site);
    assert_eq!(a.optimal.sites, b.optimal.sites);
    assert_eq!(a.optimal.test_time_cycles, b.optimal.test_time_cycles);
}
