//! `soctest` — on-chip test infrastructure design for optimal multi-site
//! testing of system chips.
//!
//! This facade crate re-exports the whole workspace under one roof, in the
//! order a user typically needs it:
//!
//! 1. describe the SOC ([`soc_model`]) — or load one of the embedded ITC'02
//!    benchmark SOCs,
//! 2. describe the fixed test cell ([`ate`]): ATE channels, vector-memory
//!    depth, test clock, probe-station index time,
//! 3. run the two-step optimizer ([`multisite`]) to obtain the core
//!    wrappers, channel groups (TAMs), E-RPCT wrapper size and the
//!    throughput-optimal number of multi-sites,
//! 4. inspect the underlying machinery ([`wrapper`], [`tam`],
//!    [`throughput`]) or cross-check the predicted throughput with the
//!    Monte-Carlo wafer-flow simulator ([`wafersim`]).
//!
//! Two sibling crates are not re-exported here: `soctest-bench` (the seed
//! figure/table binaries and the `perf_baseline` runner) and
//! `soctest-experiments` (the `soctest-repro` driver that regenerates the
//! committed paper artifacts under `artifacts/`). `docs/PAPER_MAP.md` in
//! the repository maps every paper section, equation, figure and table to
//! the module implementing it.
//!
//! # Quickstart
//!
//! The primary entry point is the session-oriented [`multisite::engine`]:
//! build an [`Engine`](prelude::Engine) per SOC, then submit typed
//! [`OptimizeRequest`](prelude::OptimizeRequest)s — single optimizations
//! and parameter sweeps alike — individually or as a table-sharing batch.
//!
//! ```
//! use soctest::prelude::*;
//!
//! let soc = soctest::soc_model::benchmarks::d695();
//! let cell = TestCell::new(AteSpec::new(256, 96 * 1024, 5.0e6), ProbeStation::paper_probe_station());
//! let engine = Engine::new(&soc);
//! let solution = engine.run(&OptimizeRequest::new(OptimizerConfig::new(cell)))?
//!     .into_solution()
//!     .expect("a plain request answers with a solution");
//! println!("test {} sites in parallel, {:.0} devices/hour",
//!          solution.optimal.sites, solution.optimal.devices_per_hour);
//! # Ok::<(), soctest::multisite::OptimizeError>(())
//! ```
//!
//! The one-shot free functions (`optimize`, the `sweep` family) remain
//! available as convenience shims over a throwaway engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use soctest_ate as ate;
pub use soctest_multisite as multisite;
pub use soctest_soc_model as soc_model;
pub use soctest_tam as tam;
pub use soctest_throughput as throughput;
pub use soctest_wafersim as wafersim;
pub use soctest_wrapper as wrapper;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use soctest_ate::{AteCostModel, AteSpec, ProbeStation, TestCell};
    pub use soctest_multisite::engine::{
        Engine, EngineBuilder, OptimizeRequest, OptimizeResponse, SweepAxis,
    };
    pub use soctest_multisite::optimizer::optimize;
    pub use soctest_multisite::problem::{MultiSiteOptions, OptimizerConfig};
    pub use soctest_multisite::solution::{MultiSiteSolution, SitePoint};
    pub use soctest_multisite::sweep::{AxisValue, SweepCurve, SweepPoint};
    pub use soctest_soc_model::{Module, ModuleKind, Soc};
    pub use soctest_tam::{ChannelGroup, TestArchitecture, TestSchedule, TimeTable};
    pub use soctest_throughput::{TestTimes, ThroughputModel, YieldParams};
    pub use soctest_wafersim::{simulate_flow, FlowParams};
    pub use soctest_wrapper::{design_wrapper, ErpctConfig, ErpctWrapper, WrapperDesign};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_entry_points() {
        use crate::prelude::*;
        let soc = crate::soc_model::benchmarks::d695();
        let cell = TestCell::new(
            AteSpec::new(128, 128 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        let config = OptimizerConfig::new(cell);
        // The engine API and the legacy convenience shim agree.
        let engine = Engine::new(&soc);
        let via_engine = engine
            .run(&OptimizeRequest::new(config))
            .expect("d695 fits")
            .into_solution()
            .expect("plain request");
        let via_shim = optimize(&soc, &config).expect("d695 fits");
        assert_eq!(via_engine, via_shim);
        assert!(via_engine.optimal.sites >= 1);
    }
}
